//! Event-driven simulation of *chained* MapReduce jobs: job 2's map
//! stage consumes job 1's reduce output inside one shared event loop,
//! so the inter-job boundary can be measured like the intra-job one.
//!
//! Under [`HandoffMode::Streaming`] every increment an upstream reduce
//! task emits (per absorbed batch for emit-during-absorb apps, at
//! finalize for aggregations) departs immediately as a *handoff flow* —
//! a network transfer from the upstream reducer's node to the downstream
//! chained map task's node, recorded as a
//! [`HandoffMark`](crate::timeline::HandoffMark) timeline event and
//! charged `CostModel::chain_map_cpu_per_record` on arrival. Downstream
//! map work therefore overlaps the upstream reduce stage; the
//! intermediate dataset is never written to the DFS.
//!
//! Under [`HandoffMode::Barrier`] the boundary is the Hadoop baseline:
//! every upstream reducer writes its replicated output to the DFS, job 2
//! starts only when job 1 has fully completed, and each downstream map
//! task pays a materialized read (source disk + network) for its input
//! partition.
//!
//! Fault recovery extends the single-job model across the edge: a
//! streaming handoff is never materialized, so when an upstream reduce
//! attempt dies, every downstream map task that consumed its stream is
//! restarted (and a completed-but-lost upstream reducer is re-executed
//! if its consumer still needs the stream). Downstream map tasks and
//! job-2 reducers recover like their single-job counterparts.
//!
//! Modeling notes, for honesty about what is and is not captured:
//!
//! * Every task of both jobs occupies a real task slot: job-2 maps
//!   contend for map slots and job-2 reducers for reduce slots alongside
//!   job 1. Cross-job slot contention cannot deadlock recovery because
//!   stage 1 has strict priority — when a pending stage-1 task finds
//!   every slot of its kind occupied, the scheduler evicts the
//!   highest-index unfinished stage-2 task of that kind back to Pending
//!   (stage 2 depends on stage 1, so the eviction never discards work
//!   the chain could have finished first). Placement is least-loaded
//!   over alive nodes with a free slot, ties preferring high node
//!   indexes so chained tasks spread away from the stage-1 tasks
//!   feeding them.
//! * Job-2 map tasks ship their shuffle partitions when the task
//!   completes, exactly like job-1 maps — the *chain edge* streams; the
//!   downstream job's own shuffle then behaves like any single job's.
//! * Stage-1 reducers honor the effective
//!   [`SpeculationPolicy`](mr_core::SpeculationPolicy) (cluster override
//!   first, then stage-1's `JobConfig`): a reduce attempt straggling by
//!   shuffle deliveries gets one backup attempt on another node, the
//!   first attempt to finish its reduce work wins, and a backup win
//!   restarts the downstream map that consumed the losing attempt's
//!   stream — the promoted winner re-ships its byte-identical output.
//!   Stage-1 maps and all stage-2 tasks are not speculated here (the
//!   single-job executor models map speculation).
//! * The chain executor ignores combiner, snapshot and deadline knobs
//!   (all modeled for single jobs by [`SimExecutor`](crate::SimExecutor));
//!   store-index overrides apply as usual.

use crate::costs::CostModel;
use crate::executor::Fault;
use crate::input::SimInput;
use crate::params::ClusterParams;
use crate::placement::{SlotLedger, TieBreak};
use crate::report::Outcome;
use crate::timeline::{SpanKind, SpecEvent, SpecTaskKind, Timeline};
use crate::trace::SimTracer;
use mr_core::chain::ChainableApplication;
use mr_core::counters::names;
use mr_core::engine::barrier::reduce_partition_barrier;
use mr_core::engine::pipeline::IncrementalDriver;
use mr_core::engine::DriverReport;
use mr_core::{
    Application, ChainSpec, Counters, DeadlinePolicy, Engine, HandoffMode, JobOutput, MemoryPolicy,
    Partitioner, Scope, SnapshotPolicy, SpeculationPolicy, TaskKind, TraceLog,
};
use mr_dfs::{ChunkId, Dfs, DfsConfig};
use mr_net::{Network, NetworkConfig, NodeId};
use mr_sim::{EventQueue, FifoResource, SimDuration, SimTime};
use mr_workloads::dist::hetero_factor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Public entry point: runs two-job chains on a simulated cluster.
pub struct ChainSimExecutor {
    params: ClusterParams,
}

impl ChainSimExecutor {
    /// An executor for the given cluster.
    pub fn new(params: ClusterParams) -> Self {
        params.validate();
        ChainSimExecutor { params }
    }

    /// Simulates the chain `first → second` over `chunks` input chunks.
    #[allow(clippy::too_many_arguments)]
    pub fn run_chain2<A, B, I, PA, PB>(
        &self,
        first: &A,
        second: &B,
        input: &I,
        chunks: u64,
        spec: &ChainSpec,
        costs: &CostModel,
        pa: &PA,
        pb: &PB,
    ) -> ChainSimReport<B>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        I: SimInput<A>,
        PA: Partitioner<A::MapKey>,
        PB: Partitioner<B::MapKey>,
    {
        self.run_chain2_with_faults(first, second, input, chunks, spec, costs, pa, pb, &[])
    }

    /// Simulates the chain with node failures injected at the given
    /// times.
    #[allow(clippy::too_many_arguments)]
    pub fn run_chain2_with_faults<A, B, I, PA, PB>(
        &self,
        first: &A,
        second: &B,
        input: &I,
        chunks: u64,
        spec: &ChainSpec,
        costs: &CostModel,
        pa: &PA,
        pb: &PB,
        faults: &[Fault],
    ) -> ChainSimReport<B>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        I: SimInput<A>,
        PA: Partitioner<A::MapKey>,
        PB: Partitioner<B::MapKey>,
    {
        costs.validate();
        assert!(chunks >= 1, "need at least one input chunk");
        let failed = |reason: String| ChainSimReport {
            outcome: Outcome::Failed {
                at: SimTime::ZERO,
                reason,
            },
            output: None,
            trace: TraceLog::new(),
            timeline1: Timeline::default(),
            timeline2: Timeline::default(),
            stage1_last_reduce_done: SimTime::ZERO,
            stage1_complete: SimTime::ZERO,
            stage2_first_work: None,
            map1_tasks_run: 0,
            red1_tasks_run: 0,
            map2_tasks_run: 0,
            red2_tasks_run: 0,
            downstream_map_restarts: 0,
            handoff_edges: 0,
            handoff_records: 0,
        };
        if let Err(e) = spec.validate() {
            return failed(e.to_string());
        }
        if spec.len() != 2 {
            return failed(format!(
                "chain simulator runs exactly 2 stages, spec has {}",
                spec.len()
            ));
        }
        // A cluster-level speculation override must still be a valid
        // policy for stage 1 (the stage that speculates here).
        if let Some(sp) = self.params.speculation {
            let mut probe = spec.stages[0].clone();
            probe.speculation = sp;
            if let Err(e) = probe.validate() {
                return failed(e.to_string());
            }
        }
        let mut sim = ChainSim::new(
            &self.params,
            first,
            second,
            input,
            chunks,
            spec,
            costs,
            pa,
            pb,
        );
        for &(secs, node) in faults {
            sim.queue
                .schedule(SimTime::from_secs_f64(secs), Ev::NodeFail(node));
        }
        sim.run()
    }
}

/// Everything a simulated chain run reports.
pub struct ChainSimReport<B: Application> {
    /// Completion or failure.
    pub outcome: Outcome,
    /// The *final stage's* output (present only on completion). Its
    /// counters merge both stages' tasks, chain handoff counters
    /// included; the intermediate dataset is never materialized.
    pub output: Option<JobOutput<B>>,
    /// The run's full structured trace — both stages in one stream
    /// (stage 1 is job 0, stage 2 is job 1). Query it with
    /// [`mr_core::TraceQuery`]. Empty when the effective
    /// [`TracePolicy`](mr_core::TracePolicy) is `Disabled`.
    pub trace: TraceLog,
    /// Stage-1 task spans, heap samples and handoff departures — a
    /// compatibility view derived from `trace` (job 0).
    pub timeline1: Timeline,
    /// Stage-2 task spans and heap samples — derived from `trace`
    /// (job 1).
    pub timeline2: Timeline,
    /// When the last stage-1 reduce task finished reducing.
    pub stage1_last_reduce_done: SimTime,
    /// When stage 1 fully completed (= `stage1_last_reduce_done` under
    /// the streaming handoff; includes the materialized output write
    /// under the barrier handoff).
    pub stage1_complete: SimTime,
    /// First instant a stage-2 map task received chain input — the
    /// overlap witness. Under the barrier handoff this is always after
    /// `stage1_complete`; under streaming it precedes
    /// `stage1_last_reduce_done` whenever reducers finish spread out.
    pub stage2_first_work: Option<SimTime>,
    /// Stage-1 map tasks executed (including fault re-executions).
    pub map1_tasks_run: usize,
    /// Stage-1 reduce tasks executed.
    pub red1_tasks_run: usize,
    /// Stage-2 (chained) map tasks executed.
    pub map2_tasks_run: usize,
    /// Stage-2 reduce tasks executed.
    pub red2_tasks_run: usize,
    /// Stage-2 map restarts forced by the upstream reduce attempt whose
    /// stream they consumed going away — dying mid-stream, or losing a
    /// speculative race (the task's own node was fine).
    pub downstream_map_restarts: usize,
    /// Cross-job handoff edges scheduled (flows in streaming mode,
    /// materialized reads in barrier mode).
    pub handoff_edges: usize,
    /// Records handed across the chain boundary.
    pub handoff_records: u64,
}

impl<B: Application> ChainSimReport<B> {
    /// Completion time in seconds, panicking on failed runs.
    pub fn completion_secs(&self) -> f64 {
        self.outcome
            .completion_secs()
            .expect("chain did not complete")
    }

    /// Whether stage-2 map work genuinely overlapped stage-1 reduce
    /// work — the paper-shaped claim for concatenated jobs.
    pub fn overlapped(&self) -> bool {
        self.stage2_first_work
            .is_some_and(|t| t < self.stage1_last_reduce_done)
    }
}

/// Events. Task events carry an attempt stamp so events addressed to a
/// killed attempt are ignored.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Schedule,
    M1Fetched(usize, u32),
    M1Computed(usize, u32),
    M1Written(usize, u32),
    R1Batch(usize, u32),
    R1SortDone(usize, u32),
    R1GroupedDone(usize, u32),
    R1FinalizeDone(usize, u32),
    R1OutputPart(usize, u32),
    M2Work(usize, u32),
    M2Written(usize, u32),
    R2Batch(usize, u32),
    R2SortDone(usize, u32),
    R2GroupedDone(usize, u32),
    R2FinalizeDone(usize, u32),
    R2OutputPart(usize, u32),
    /// Periodic straggler check for stage-1 reducers.
    SpecTick,
    /// A stage-1 backup reduce attempt finishes its launch overhead and
    /// starts pulling shuffle flows.
    Red1BackupStart(usize, u32),
    /// A cancelled speculative attempt's reduce slot frees on the node.
    SpecSlotFree(usize),
    NodeFail(usize),
}

/// Network flow tags.
#[derive(Debug, Clone, Copy)]
enum Tag {
    /// Remote input-chunk fetch for stage-1 map `m`.
    Fetch1(usize, u32),
    /// Stage-1 shuffle of map `m`'s partition for reducer `r`.
    Shuffle1 {
        map: usize,
        map_attempt: u32,
        red: usize,
        red_attempt: u32,
    },
    /// Cross-job handoff: upstream reducer `red`'s output records
    /// `start..end` bound for downstream map `map`.
    Handoff {
        red: usize,
        red_attempt: u32,
        map: usize,
        map_attempt: u32,
        start: usize,
        end: usize,
    },
    /// Barrier-mode materialized read of upstream partition `m`'s whole
    /// output by downstream map `m`.
    Fetch2(usize, u32),
    /// Stage-2 shuffle of map `m`'s partition for reducer `r`.
    Shuffle2 {
        map: usize,
        map_attempt: u32,
        red: usize,
        red_attempt: u32,
    },
    /// Output replica write for stage-1 reducer `r` (barrier mode only).
    Output1(usize, u32, NodeId),
    /// Output replica write for stage-2 reducer `r`.
    Output2(usize, u32, NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MState {
    Pending,
    Fetching,
    Computing,
    Writing,
    Done,
}

struct Map1<A: Application> {
    chunk: ChunkId,
    state: MState,
    node: usize,
    attempt: u32,
    started: SimTime,
    #[allow(clippy::type_complexity)]
    output: Option<Vec<Vec<(A::MapKey, A::MapValue)>>>,
    out_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RState {
    Pending,
    Running,
    Finalizing,
    Writing,
    Done,
}

/// One reduce task of either stage (`X` is that stage's application).
struct RedTask<X: Application> {
    state: RState,
    node: usize,
    attempt: u32,
    started: SimTime,
    fetched_from: Vec<bool>,
    flow_from: Vec<bool>,
    buffer: Vec<(X::MapKey, X::MapValue)>,
    driver: Option<IncrementalDriver<X>>,
    batches: VecDeque<Vec<(X::MapKey, X::MapValue)>>,
    cpu_free: SimTime,
    io_charged: u64,
    shuffle_done_at: Option<SimTime>,
    input_bytes: u64,
    out: Vec<(X::OutKey, X::OutValue)>,
    counters: Counters,
    report: Option<DriverReport>,
    write_parts_left: usize,
    write_started: SimTime,
    write_bytes: u64,
    /// Stage 1 only: output records already shipped downstream.
    handed: usize,
}

impl<X: Application> RedTask<X> {
    fn fresh() -> Self {
        RedTask {
            state: RState::Pending,
            node: usize::MAX,
            attempt: 0,
            started: SimTime::ZERO,
            fetched_from: Vec::new(),
            flow_from: Vec::new(),
            buffer: Vec::new(),
            driver: None,
            batches: VecDeque::new(),
            cpu_free: SimTime::ZERO,
            io_charged: 0,
            shuffle_done_at: None,
            input_bytes: 0,
            out: Vec::new(),
            counters: Counters::new(),
            report: None,
            write_parts_left: 0,
            write_started: SimTime::ZERO,
            write_bytes: 0,
            handed: 0,
        }
    }

    /// Resets for a restart on another node (attempt bumped).
    fn restart(&mut self) {
        self.state = RState::Pending;
        self.attempt += 1;
        self.node = usize::MAX;
        self.fetched_from.clear();
        self.flow_from.clear();
        self.buffer.clear();
        self.driver = None;
        self.batches.clear();
        self.shuffle_done_at = None;
        self.input_bytes = 0;
        self.out.clear();
        self.counters = Counters::new();
        self.report = None;
        self.write_parts_left = 0;
        self.write_started = SimTime::ZERO;
        self.write_bytes = 0;
        self.io_charged = 0;
        self.handed = 0;
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum M2State {
    Pending,
    Consuming,
    Writing,
    Done,
}

/// One downstream (stage-2) chained map task: consumes upstream reduce
/// partition `i`'s record stream and produces stage-2 shuffle output.
struct Map2<B: Application> {
    state: M2State,
    node: usize,
    attempt: u32,
    started: SimTime,
    /// Delivered handoff batches awaiting CPU (already adapted).
    queued: VecDeque<Vec<(B::InKey, B::InValue)>>,
    /// Upstream records delivered so far (queued or mapped).
    received: usize,
    /// Nominal wire bytes delivered.
    wire_bytes: u64,
    /// Accumulated per-reducer shuffle output.
    parts: Vec<Vec<(B::MapKey, B::MapValue)>>,
    cpu_free: SimTime,
    out_bytes: u64,
}

impl<B: Application> Map2<B> {
    fn fresh(reducers: usize) -> Self {
        Map2 {
            state: M2State::Pending,
            node: usize::MAX,
            attempt: 0,
            started: SimTime::ZERO,
            queued: VecDeque::new(),
            received: 0,
            wire_bytes: 0,
            parts: (0..reducers).map(|_| Vec::new()).collect(),
            cpu_free: SimTime::ZERO,
            out_bytes: 0,
        }
    }

    fn restart(&mut self, reducers: usize) {
        self.state = M2State::Pending;
        self.attempt += 1;
        self.node = usize::MAX;
        self.queued.clear();
        self.received = 0;
        self.wire_bytes = 0;
        self.parts = (0..reducers).map(|_| Vec::new()).collect();
        self.out_bytes = 0;
    }
}

/// Mutable access to stage-1 reduce attempt `(r, bk)` — the primary in
/// `reds1` or the live backup in `reds1_bk` — without taking a borrow
/// of the whole `ChainSim` (expands inline, so disjoint fields stay
/// usable).
macro_rules! red1_mut {
    ($s:expr, $r:expr, $bk:expr) => {
        if $bk {
            $s.reds1_bk[$r]
                .as_mut()
                .expect("backup reduce attempt present")
        } else {
            &mut $s.reds1[$r]
        }
    };
}

struct ChainSim<'a, A: Application, B: Application, I, PA, PB> {
    p: &'a ClusterParams,
    first: &'a A,
    second: &'a B,
    input: &'a I,
    cfg1: mr_core::JobConfig,
    cfg2: mr_core::JobConfig,
    streaming: bool,
    costs: &'a CostModel,
    pa: &'a PA,
    pb: &'a PB,
    queue: EventQueue<Ev>,
    net: Network<Tag>,
    disks: Vec<FifoResource>,
    dfs: Dfs,
    slots: SlotLedger,
    node_factor: Vec<f64>,
    maps1: Vec<Map1<A>>,
    reds1: Vec<RedTask<A>>,
    /// Live speculative backup attempts, one at most per stage-1 reducer.
    reds1_bk: Vec<Option<RedTask<A>>>,
    /// Highest attempt stamp issued per stage-1 reducer: restarts and
    /// backup launches draw from here so no two live attempts ever share
    /// a stamp.
    red1_seq: Vec<u32>,
    /// Whether a backup was ever launched for stage-1 reducer `r`.
    red1_speculated: Vec<bool>,
    /// Effective straggler policy for stage-1 reducers (cluster override
    /// first, then stage-1's own config).
    speculation: SpeculationPolicy,
    maps2: Vec<Map2<B>>,
    reds2: Vec<RedTask<B>>,
    maps1_done: usize,
    reds1_done: usize,
    maps2_done: usize,
    reds2_done: usize,
    /// One trace recorder for the whole chain: stage 1 records as job 0,
    /// stage 2 as job 1, so a run yields one canonical stream. Always
    /// records; the effective trace policy gates export (see
    /// `SimTracer`).
    tracer: SimTracer,
    stage1_last_reduce_done: SimTime,
    stage1_complete: Option<SimTime>,
    stage2_first_work: Option<SimTime>,
    map1_tasks_run: usize,
    red1_tasks_run: usize,
    map2_tasks_run: usize,
    red2_tasks_run: usize,
    downstream_map_restarts: usize,
    handoff_edges: usize,
    handoff_records: u64,
    handoff_bytes: u64,
    map_counters: Counters,
    noise_rng: StdRng,
    failure: Option<(SimTime, String)>,
    now: SimTime,
}

impl<'a, A, B, I, PA, PB> ChainSim<'a, A, B, I, PA, PB>
where
    A: Application,
    B: ChainableApplication<A::OutKey, A::OutValue>,
    I: SimInput<A>,
    PA: Partitioner<A::MapKey>,
    PB: Partitioner<B::MapKey>,
{
    #[allow(clippy::too_many_arguments)]
    fn new(
        p: &'a ClusterParams,
        first: &'a A,
        second: &'a B,
        input: &'a I,
        chunks: u64,
        spec: &ChainSpec,
        costs: &'a CostModel,
        pa: &'a PA,
        pb: &'a PB,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0xC1A5_7E12);
        let node_factor: Vec<f64> = (0..p.nodes)
            .map(|_| hetero_factor(&mut rng, p.hetero_sigma))
            .collect();
        let mut dfs = Dfs::new(
            DfsConfig {
                nodes: p.nodes,
                chunk_bytes: p.chunk_bytes,
                replication: p.replication,
            },
            p.seed,
        );
        let file = dfs.create_file("chain-input", chunks * p.chunk_bytes);
        let maps1 = dfs
            .file_chunks(file)
            .to_vec()
            .into_iter()
            .map(|chunk| Map1 {
                chunk,
                state: MState::Pending,
                node: usize::MAX,
                attempt: 0,
                started: SimTime::ZERO,
                output: None,
                out_bytes: (p.chunk_bytes as f64 * costs.shuffle_selectivity) as u64,
            })
            .collect();
        // Effective straggler policy for stage-1 reducers, resolved
        // before the per-stage configs are scrubbed below.
        let speculation = p.speculation.unwrap_or(spec.stages[0].speculation);
        // Effective per-stage configs: every cluster override applied in
        // one place (`ClusterParams::effective_config` — store index and
        // trace matter here), then the knobs this executor does not model
        // are scrubbed: combiner, snapshot and deadline modeling is the
        // single-job executor's domain (see module docs), and speculation
        // lives in `ChainSim::speculation`, not the cfgs.
        let effective = |cfg: &mr_core::JobConfig| {
            let mut cfg = p.effective_config(cfg);
            cfg.combiner = mr_core::CombinerPolicy::Disabled;
            cfg.snapshots = SnapshotPolicy::Disabled;
            cfg.speculation = SpeculationPolicy::Disabled;
            cfg.deadline = DeadlinePolicy::Disabled;
            cfg
        };
        let cfg1 = effective(&spec.stages[0]);
        let cfg2 = effective(&spec.stages[1]);
        let r1 = cfg1.reducers;
        let reds1 = (0..r1).map(|_| RedTask::fresh()).collect();
        let maps2 = (0..r1).map(|_| Map2::fresh(cfg2.reducers)).collect();
        let reds2 = (0..cfg2.reducers).map(|_| RedTask::fresh()).collect();
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Ev::Schedule);
        if let SpeculationPolicy::Enabled { check_secs, .. } = speculation {
            queue.schedule(SimTime::from_secs_f64(check_secs), Ev::SpecTick);
        }
        ChainSim {
            net: Network::new(NetworkConfig {
                nodes: p.nodes,
                link_bytes_per_sec: p.link_bytes_per_sec,
                oversubscription: p.oversubscription,
            }),
            disks: (0..p.nodes)
                .map(|_| FifoResource::new(p.disk_bytes_per_sec))
                .collect(),
            slots: SlotLedger::new(p.nodes, p.map_slots, p.reduce_slots),
            noise_rng: StdRng::seed_from_u64(p.seed ^ 0x5EED_0F0F),
            streaming: spec.chain.handoff == HandoffMode::Streaming,
            p,
            first,
            second,
            input,
            cfg1,
            cfg2,
            costs,
            pa,
            pb,
            queue,
            dfs,
            node_factor,
            maps1,
            reds1,
            reds1_bk: (0..r1).map(|_| None).collect(),
            red1_seq: vec![0; r1],
            red1_speculated: vec![false; r1],
            speculation,
            maps2,
            reds2,
            maps1_done: 0,
            reds1_done: 0,
            maps2_done: 0,
            reds2_done: 0,
            tracer: SimTracer::new(),
            stage1_last_reduce_done: SimTime::ZERO,
            stage1_complete: None,
            stage2_first_work: None,
            map1_tasks_run: 0,
            red1_tasks_run: 0,
            map2_tasks_run: 0,
            red2_tasks_run: 0,
            downstream_map_restarts: 0,
            handoff_edges: 0,
            handoff_records: 0,
            handoff_bytes: 0,
            map_counters: Counters::new(),
            failure: None,
            now: SimTime::ZERO,
        }
    }

    fn pipelined1(&self) -> bool {
        matches!(self.cfg1.engine, Engine::BarrierLess { .. })
    }

    fn pipelined2(&self) -> bool {
        matches!(self.cfg2.engine, Engine::BarrierLess { .. })
    }

    fn absorb_cost(cfg: &mr_core::JobConfig, costs: &CostModel) -> f64 {
        match &cfg.engine {
            Engine::BarrierLess {
                memory: MemoryPolicy::KvStore { .. },
            } => costs.kv_cpu_per_record,
            Engine::BarrierLess { .. } => {
                costs.reduce_cpu_per_record + costs.absorb_extra_per_record
            }
            Engine::Barrier => costs.reduce_cpu_per_record,
        }
    }

    fn noise(&mut self) -> f64 {
        hetero_factor(&mut self.noise_rng, self.p.task_noise_sigma)
    }

    /// Least-loaded alive node with a free slot of the given kind, or
    /// `None` when every slot is occupied. Ties prefer *high* node
    /// indexes — the stage-1 loops fill low indexes first, so stage-2
    /// tasks spread away from the stage-1 tasks feeding them instead of
    /// stacking onto the same nodes.
    fn free_slot_node(&self, is_map: bool) -> Option<usize> {
        self.slots.least_loaded(is_map, TieBreak::HighIndex)
    }

    /// Which live stage-1 reduce attempt carries `attempt`:
    /// `Some(false)` = primary, `Some(true)` = backup, `None` = a dead
    /// (cancelled, lost or superseded) attempt whose events are dropped.
    fn red1_slot(&self, r: usize, attempt: u32) -> Option<bool> {
        if self.reds1[r].attempt == attempt {
            Some(false)
        } else if self.reds1_bk[r]
            .as_ref()
            .is_some_and(|t| t.attempt == attempt)
        {
            Some(true)
        } else {
            None
        }
    }

    // ---------------------------------------------------------------- run

    fn run(mut self) -> ChainSimReport<B> {
        loop {
            if self.failure.is_some() {
                break;
            }
            let tq = self.queue.peek_time();
            let tn = self.net.next_event_time();
            match (tq, tn) {
                (None, None) => break,
                (Some(tq_at), tn_opt) if tn_opt.is_none_or(|tn_at| tq_at <= tn_at) => {
                    let (at, ev) = self.queue.pop().expect("peeked");
                    self.now = at;
                    self.handle_event(at, ev);
                }
                (_, Some(tn_at)) => {
                    self.now = tn_at;
                    for (_, tag) in self.net.advance_to(tn_at) {
                        self.handle_flow(tn_at, tag);
                    }
                }
                (Some(_), None) => unreachable!("guard above covers this"),
            }
            if self.reds2_done == self.reds2.len() {
                break;
            }
        }
        self.finish_report()
    }

    fn finish_report(mut self) -> ChainSimReport<B> {
        let complete = self.reds2_done == self.reds2.len();
        let outcome = match self.failure.take() {
            Some((at, reason)) => Outcome::Failed { at, reason },
            None if complete => Outcome::Completed {
                at: self.tracer.last_end(),
            },
            None => Outcome::Failed {
                at: self.now,
                reason: "chain simulation stalled before completion".to_string(),
            },
        };
        // Emit the chain's counter totals into the trace: map-side
        // tallies of both stages plus the handoff counters as the job-0
        // batch (the handoff is a stage-1 output fact), each reducer's
        // tallies under its own task scope in its own stage. The direct
        // merge of exactly these values is what the legacy report
        // carried, so the trace-derived `Counters` is equal by
        // construction.
        let mut job0 = self.map_counters.clone();
        if complete {
            job0.add(names::CHAIN_HANDOFF_RECORDS, self.handoff_records);
            job0.add(names::CHAIN_HANDOFF_BATCHES, self.handoff_edges as u64);
            job0.add(names::CHAIN_HANDOFF_BYTES, self.handoff_bytes);
        }
        self.tracer.counters(Scope::job(0), &job0);
        for (idx, r) in self.reds1.iter().enumerate() {
            self.tracer.counters(
                Scope::task(0, TaskKind::Reduce, idx as u32, r.attempt, r.node as u32),
                &r.counters,
            );
        }
        for (idx, r) in self.reds2.iter().enumerate() {
            self.tracer.counters(
                Scope::task(1, TaskKind::Reduce, idx as u32, r.attempt, r.node as u32),
                &r.counters,
            );
        }
        let trace_on = self.cfg1.trace.is_enabled();
        let (trace, timeline1, timeline2) = if trace_on {
            let log = std::mem::take(&mut self.tracer).into_log();
            let t1 = Timeline::from_log(&log, 0);
            let t2 = Timeline::from_log(&log, 1);
            (log, t1, t2)
        } else {
            (TraceLog::new(), Timeline::default(), Timeline::default())
        };
        let output = if outcome.is_completed() {
            let counters = if trace_on {
                Counters::from_trace(&trace)
            } else {
                let mut c = job0;
                for r in &self.reds1 {
                    c.merge(&r.counters);
                }
                for r in &self.reds2 {
                    c.merge(&r.counters);
                }
                c
            };
            let mut partitions = Vec::with_capacity(self.reds2.len());
            let mut reports = Vec::new();
            for r in &mut self.reds2 {
                partitions.push(std::mem::take(&mut r.out));
                if let Some(rep) = r.report.take() {
                    reports.push(rep);
                }
            }
            let snapshots = (0..partitions.len()).map(|_| Vec::new()).collect();
            Some(JobOutput {
                partitions,
                counters,
                reports,
                snapshots,
                trace: TraceLog::new(),
            })
        } else {
            None
        };
        ChainSimReport {
            outcome,
            output,
            trace,
            timeline1,
            timeline2,
            stage1_last_reduce_done: self.stage1_last_reduce_done,
            stage1_complete: self.stage1_complete.unwrap_or(SimTime::ZERO),
            stage2_first_work: self.stage2_first_work,
            map1_tasks_run: self.map1_tasks_run,
            red1_tasks_run: self.red1_tasks_run,
            map2_tasks_run: self.map2_tasks_run,
            red2_tasks_run: self.red2_tasks_run,
            downstream_map_restarts: self.downstream_map_restarts,
            handoff_edges: self.handoff_edges,
            handoff_records: self.handoff_records,
        }
    }

    // ---------------------------------------------------------- scheduler

    fn handle_event(&mut self, at: SimTime, ev: Ev) {
        match ev {
            Ev::Schedule => self.schedule_tasks(at),
            Ev::M1Fetched(m, a) => {
                if self.maps1[m].attempt == a && self.maps1[m].state == MState::Fetching {
                    self.map1_compute(at, m);
                }
            }
            Ev::M1Computed(m, a) => {
                if self.maps1[m].attempt == a && self.maps1[m].state == MState::Computing {
                    self.map1_write(at, m);
                }
            }
            Ev::M1Written(m, a) => {
                if self.maps1[m].attempt == a && self.maps1[m].state == MState::Writing {
                    self.map1_done(at, m);
                }
            }
            Ev::R1Batch(r, a) => {
                if let Some(bk) = self.red1_slot(r, a) {
                    if red1_mut!(self, r, bk).state == RState::Running {
                        self.red1_batch(at, r, bk);
                    }
                }
            }
            Ev::R1SortDone(r, a) => {
                if let Some(bk) = self.red1_slot(r, a) {
                    self.red1_grouped_start(at, r, bk);
                }
            }
            Ev::R1GroupedDone(r, a) => {
                if let Some(bk) = self.red1_slot(r, a) {
                    self.red1_grouped_done(at, r, bk);
                }
            }
            Ev::R1FinalizeDone(r, a) => {
                if let Some(bk) = self.red1_slot(r, a) {
                    if red1_mut!(self, r, bk).state == RState::Finalizing {
                        self.red1_finalize_done(at, r, bk);
                    }
                }
            }
            Ev::R1OutputPart(r, a) => {
                // Barrier-mode output writes happen strictly after the
                // speculative race is resolved: primary only.
                if self.reds1[r].attempt == a && self.reds1[r].state == RState::Writing {
                    self.red1_output_part_done(at, r);
                }
            }
            Ev::M2Work(m, a) => {
                if self.maps2[m].attempt == a && self.maps2[m].state == M2State::Consuming {
                    self.map2_work(at, m);
                }
            }
            Ev::M2Written(m, a) => {
                if self.maps2[m].attempt == a && self.maps2[m].state == M2State::Writing {
                    self.map2_done(at, m);
                }
            }
            Ev::R2Batch(r, a) => {
                if self.reds2[r].attempt == a && self.reds2[r].state == RState::Running {
                    self.red2_batch(at, r);
                }
            }
            Ev::R2SortDone(r, a) => {
                if self.reds2[r].attempt == a {
                    self.red2_grouped_start(at, r);
                }
            }
            Ev::R2GroupedDone(r, a) => {
                if self.reds2[r].attempt == a {
                    self.red2_grouped_done(at, r);
                }
            }
            Ev::R2FinalizeDone(r, a) => {
                if self.reds2[r].attempt == a && self.reds2[r].state == RState::Finalizing {
                    self.red2_finalize_done(at, r);
                }
            }
            Ev::R2OutputPart(r, a) => {
                if self.reds2[r].attempt == a && self.reds2[r].state == RState::Writing {
                    self.red2_output_part_done(at, r);
                }
            }
            Ev::SpecTick => self.spec_tick(at),
            // Resolved by attempt, not by assuming the backup slot: a
            // kill of the original's node during the launch overhead
            // promotes the not-yet-started backup to primary, and the
            // attempt must start pulling from wherever it now lives.
            Ev::Red1BackupStart(r, a) => {
                if let Some(bk) = self.red1_slot(r, a) {
                    if red1_mut!(self, r, bk).state == RState::Running {
                        for m in 0..self.maps1.len() {
                            let wants = self.maps1[m].state == MState::Done
                                && !red1_mut!(self, r, bk).flow_from[m];
                            if wants {
                                self.start_shuffle1_flow(at, m, r, bk);
                            }
                        }
                    }
                }
            }
            Ev::SpecSlotFree(n) => {
                if self.slots.alive[n] {
                    self.slots.red_used[n] = self.slots.red_used[n].saturating_sub(1);
                    self.queue.schedule(at, Ev::Schedule);
                }
            }
            Ev::NodeFail(n) => self.fail_node(at, n),
        }
    }

    fn schedule_tasks(&mut self, at: SimTime) {
        // Stage 1 has strict slot priority: pending stage-1 work that
        // cannot find a free slot evicts unfinished stage-2 tasks of the
        // same kind instead of deadlocking on slots the dependent job
        // holds (see module docs).
        self.evict_for_stage1(at);
        // Stage-1 maps: chunk-local placement onto map slots.
        while let Some(node) = self.slots.first_free_map() {
            let local = self.maps1.iter().position(|m| {
                m.state == MState::Pending && self.dfs.is_local(m.chunk, NodeId(node as u32))
            });
            let pick = local.or_else(|| self.maps1.iter().position(|m| m.state == MState::Pending));
            let Some(m) = pick else { break };
            self.start_map1(at, m, node);
        }
        // Stage-1 reducers: id order onto reduce slots.
        while let Some(r) = self.reds1.iter().position(|r| r.state == RState::Pending) {
            let Some(node) = self.slots.least_loaded(false, TieBreak::LowIndex) else {
                break;
            };
            self.start_reduce1(at, r, node);
        }
        // Stage-2 tasks take whatever slots stage 1 left free.
        // Streaming-mode maps start consuming as soon as a map slot
        // opens; barrier-mode maps wait for stage 1 to complete, then
        // fetch their materialized input.
        let stage2_ready = self.streaming || self.stage1_complete.is_some();
        if stage2_ready {
            while let Some(m) = self.maps2.iter().position(|t| t.state == M2State::Pending) {
                let Some(node) = self.free_slot_node(true) else {
                    break;
                };
                self.start_map2(at, m, node);
            }
            // Stage-2 reducers launch with their job: as slots free for
            // a streaming chain, only after the inter-job barrier
            // otherwise — so barrier-mode timeline spans never pretend
            // job 2 existed early.
            while let Some(r) = self.reds2.iter().position(|t| t.state == RState::Pending) {
                let Some(node) = self.free_slot_node(false) else {
                    break;
                };
                self.start_reduce2(at, r, node);
            }
        }
    }

    /// Evict an unfinished stage-2 task (highest index first) when — and
    /// only when — stage-1 progress is genuinely blocked: a pending
    /// stage-1 task, zero free slots of its kind, and no running stage-1
    /// task of that kind that would eventually free one. (Pending
    /// stage-1 work behind *running* stage-1 work is the ordinary wave
    /// pattern and must not disturb stage 2, or the chain would lose its
    /// overlap.) Evicted tasks return to Pending and restart through the
    /// ordinary machinery; their in-flight flows are cancelled and stale
    /// events are dropped by the attempt bump.
    fn evict_for_stage1(&mut self, at: SimTime) {
        while self.maps1.iter().any(|m| m.state == MState::Pending)
            && self.free_slots(true) == 0
            && !self.maps1.iter().any(|m| {
                matches!(
                    m.state,
                    MState::Fetching | MState::Computing | MState::Writing
                )
            })
        {
            let Some(m) = (0..self.maps2.len())
                .rev()
                .find(|&m| matches!(self.maps2[m].state, M2State::Consuming | M2State::Writing))
            else {
                break;
            };
            self.evict_map2(at, m);
        }
        // Backups are not counted as runnable stage-1 reducers here: a
        // live backup implies a live primary, so the primary already
        // witnesses progress.
        while self.reds1.iter().any(|r| r.state == RState::Pending)
            && self.free_slots(false) == 0
            && !self.reds1.iter().any(|r| {
                matches!(
                    r.state,
                    RState::Running | RState::Finalizing | RState::Writing
                )
            })
        {
            let Some(r) = (0..self.reds2.len()).rev().find(|&r| {
                matches!(
                    self.reds2[r].state,
                    RState::Running | RState::Finalizing | RState::Writing
                )
            }) else {
                break;
            };
            self.evict_red2(at, r);
        }
    }

    fn free_slots(&self, is_map: bool) -> usize {
        self.slots.free_slots(is_map)
    }

    fn evict_map2(&mut self, at: SimTime, m: usize) {
        let old = self.maps2[m].attempt;
        self.slots.map_used[self.maps2[m].node] -= 1;
        self.maps2[m].restart(self.cfg2.reducers);
        self.net.cancel_where(at, |t| match *t {
            Tag::Handoff {
                map, map_attempt, ..
            } => map == m && map_attempt == old,
            Tag::Fetch2(mm, aa) => mm == m && aa == old,
            _ => false,
        });
    }

    fn evict_red2(&mut self, at: SimTime, r: usize) {
        let old = self.reds2[r].attempt;
        self.slots.red_used[self.reds2[r].node] -= 1;
        self.reds2[r].restart();
        self.net.cancel_where(at, |t| match *t {
            Tag::Shuffle2 {
                red, red_attempt, ..
            } => red == r && red_attempt == old,
            Tag::Output2(rr, aa, _) => rr == r && aa == old,
            _ => false,
        });
    }

    // --------------------------------------------------------- stage 1 map

    fn start_map1(&mut self, at: SimTime, m: usize, node: usize) {
        self.slots.map_used[node] += 1;
        self.map1_tasks_run += 1;
        let task = &mut self.maps1[m];
        task.state = MState::Fetching;
        task.node = node;
        task.started = at;
        self.start_fetch1(at, m);
    }

    fn start_fetch1(&mut self, at: SimTime, m: usize) {
        let task = &self.maps1[m];
        let node = task.node;
        let chunk = task.chunk;
        let attempt = task.attempt;
        let bytes = self.dfs.chunk(chunk).bytes;
        let src = self.dfs.read_source(chunk, NodeId(node as u32));
        if src.local {
            let done = self.disks[node].submit(at, bytes);
            self.queue.schedule(done, Ev::M1Fetched(m, attempt));
        } else {
            self.disks[src.node.0 as usize].submit(at, bytes);
            self.net.start_flow(
                at,
                src.node,
                NodeId(node as u32),
                bytes,
                Tag::Fetch1(m, attempt),
            );
        }
    }

    fn map1_compute(&mut self, at: SimTime, m: usize) {
        let node = self.maps1[m].node;
        self.maps1[m].state = MState::Computing;
        let dur = SimDuration::from_secs_f64(
            self.costs.map_cpu_per_chunk * self.node_factor[node] * self.noise(),
        );
        self.queue
            .schedule(at + dur, Ev::M1Computed(m, self.maps1[m].attempt));
    }

    fn map1_write(&mut self, at: SimTime, m: usize) {
        let chunk_index = self.dfs.chunk(self.maps1[m].chunk).index as u64;
        let records = self.input.records(chunk_index);
        let reducers = self.cfg1.reducers;
        let mut parts: Vec<Vec<(A::MapKey, A::MapValue)>> =
            (0..reducers).map(|_| Vec::new()).collect();
        let mut emitted = 0u64;
        {
            let mut emit = mr_core::FnEmit(|k: A::MapKey, v: A::MapValue| {
                emitted += 1;
                let p = self.pa.partition(&k, reducers);
                parts[p].push((k, v));
            });
            for (k, v) in &records {
                self.first.map(k, v, &mut emit);
            }
        }
        self.map_counters.add(names::MAP_OUTPUT_RECORDS, emitted);
        let node = self.maps1[m].node;
        let task = &mut self.maps1[m];
        task.output = Some(parts);
        task.state = MState::Writing;
        let out_bytes = task.out_bytes;
        let done = self.disks[node].submit(at, out_bytes);
        self.queue.schedule(done, Ev::M1Written(m, task.attempt));
    }

    fn map1_done(&mut self, at: SimTime, m: usize) {
        let node = self.maps1[m].node;
        self.maps1[m].state = MState::Done;
        self.maps1_done += 1;
        self.slots.map_used[node] -= 1;
        self.tracer.span(
            0,
            SpanKind::Map,
            m,
            self.maps1[m].attempt,
            node,
            self.maps1[m].started,
            at,
        );
        for r in 0..self.reds1.len() {
            if self.reds1[r].state == RState::Running && !self.reds1[r].flow_from[m] {
                self.start_shuffle1_flow(at, m, r, false);
            }
            // Backups past their launch overhead pull too.
            if self.reds1_bk[r]
                .as_ref()
                .is_some_and(|t| t.state == RState::Running && t.started <= at && !t.flow_from[m])
            {
                self.start_shuffle1_flow(at, m, r, true);
            }
        }
        for r in 0..self.reds1.len() {
            if self.reds1[r].state == RState::Running {
                self.check_shuffle1_complete(at, r, false);
            }
            if self.reds1_bk[r]
                .as_ref()
                .is_some_and(|t| t.state == RState::Running && t.started <= at)
            {
                self.check_shuffle1_complete(at, r, true);
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }

    // ------------------------------------------------------ stage 1 reduce

    fn start_reduce1(&mut self, at: SimTime, r: usize, node: usize) {
        self.slots.red_used[node] += 1;
        self.red1_tasks_run += 1;
        let n_maps = self.maps1.len();
        let task = &mut self.reds1[r];
        task.state = RState::Running;
        task.node = node;
        task.started = at;
        task.fetched_from = vec![false; n_maps];
        task.flow_from = vec![false; n_maps];
        task.cpu_free = at;
        if self.pipelined1() {
            match IncrementalDriver::new(self.first, &self.cfg1, r) {
                Ok(driver) => self.reds1[r].driver = Some(driver),
                Err(e) => {
                    self.failure = Some((at, format!("stage-1 driver init failed: {e}")));
                    return;
                }
            }
        }
        for m in 0..n_maps {
            if self.maps1[m].state == MState::Done {
                self.start_shuffle1_flow(at, m, r, false);
            }
        }
    }

    fn start_shuffle1_flow(&mut self, at: SimTime, m: usize, r: usize, bk: bool) {
        let total_records: usize = self.maps1[m]
            .output
            .as_ref()
            .expect("done map has output")
            .iter()
            .map(Vec::len)
            .sum();
        let part_records = self.maps1[m].output.as_ref().unwrap()[r].len();
        let bytes = if total_records > 0 {
            (self.maps1[m].out_bytes as f64 * part_records as f64 / total_records as f64) as u64
        } else {
            self.maps1[m].out_bytes / self.cfg1.reducers as u64
        };
        let src = NodeId(self.maps1[m].node as u32);
        let map_attempt = self.maps1[m].attempt;
        let task = red1_mut!(self, r, bk);
        task.flow_from[m] = true;
        let dst = NodeId(task.node as u32);
        let red_attempt = task.attempt;
        self.net.start_flow(
            at,
            src,
            dst,
            bytes,
            Tag::Shuffle1 {
                map: m,
                map_attempt,
                red: r,
                red_attempt,
            },
        );
    }

    fn shuffle1_delivery(&mut self, at: SimTime, m: usize, r: usize, bk: bool) {
        let batch = self.maps1[m].output.as_ref().expect("done map")[r].clone();
        let total_records: usize = self.maps1[m]
            .output
            .as_ref()
            .unwrap()
            .iter()
            .map(Vec::len)
            .sum();
        let bytes = if total_records > 0 {
            (self.maps1[m].out_bytes as f64 * batch.len() as f64 / total_records as f64) as u64
        } else {
            self.maps1[m].out_bytes / self.cfg1.reducers as u64
        };
        let pipelined = self.pipelined1();
        let absorb = Self::absorb_cost(&self.cfg1, self.costs);
        let task = red1_mut!(self, r, bk);
        task.fetched_from[m] = true;
        task.input_bytes += bytes;
        if pipelined {
            let cost = absorb * batch.len() as f64;
            let dur = SimDuration::from_secs_f64(cost * self.node_factor[task.node]);
            let start = task.cpu_free.max(at);
            task.cpu_free = start + dur;
            task.batches.push_back(batch);
            self.queue
                .schedule(task.cpu_free, Ev::R1Batch(r, task.attempt));
        } else {
            task.buffer.extend(batch);
        }
        self.check_shuffle1_complete(at, r, bk);
    }

    fn check_shuffle1_complete(&mut self, at: SimTime, r: usize, bk: bool) {
        let n_maps = self.maps1.len();
        let maps_done = self.maps1_done == n_maps;
        let task = red1_mut!(self, r, bk);
        let all =
            task.fetched_from.iter().all(|&f| f) && task.fetched_from.len() == n_maps && maps_done;
        if !all || task.shuffle_done_at.is_some() {
            return;
        }
        task.shuffle_done_at = Some(at);
        if self.pipelined1() {
            let task = red1_mut!(self, r, bk);
            let when = task.cpu_free.max(at);
            self.queue.schedule(when, Ev::R1Batch(r, task.attempt));
        } else {
            let task = red1_mut!(self, r, bk);
            let (started, node, attempt) = (task.started, task.node, task.attempt);
            let n = task.buffer.len() as f64;
            if !bk {
                self.tracer
                    .span(0, SpanKind::Shuffle, r, attempt, node, started, at);
            }
            let sort = self.costs.sort_cpu_coeff * n * n.max(2.0).log2() * self.node_factor[node];
            self.queue.schedule(
                at + SimDuration::from_secs_f64(sort),
                Ev::R1SortDone(r, attempt),
            );
        }
    }

    fn red1_batch(&mut self, at: SimTime, r: usize, bk: bool) {
        let task = red1_mut!(self, r, bk);
        if let Some(batch) = task.batches.pop_front() {
            let node = task.node;
            let attempt = task.attempt;
            let driver = task.driver.as_mut().expect("pipelined reducer");
            for (k, v) in batch {
                if let Err(e) = driver.push(self.first, k, v, &mut task.out) {
                    self.fail_job(at, 1, r, e);
                    return;
                }
            }
            let bytes = driver.modelled_bytes();
            let io = driver.io_bytes();
            let delta = io - task.io_charged;
            if delta > 0 {
                task.io_charged = io;
                self.disks[node].submit(at, delta);
            }
            if !bk {
                self.tracer.heap_sample(0, r, attempt, node, at, bytes);
                // Emit-during-absorb applications produced new output:
                // stream it downstream right now. Backups never ship —
                // only the primary attempt feeds the chain edge.
                if self.streaming {
                    self.ship_handoff(at, r);
                }
            }
        }
        let task = red1_mut!(self, r, bk);
        if task.shuffle_done_at.is_some() && task.batches.is_empty() && task.cpu_free <= at {
            self.red1_start_finalize(at, r, bk);
        }
    }

    fn red1_start_finalize(&mut self, at: SimTime, r: usize, bk: bool) {
        let task = red1_mut!(self, r, bk);
        task.state = RState::Finalizing;
        let entries = task.driver.as_ref().map_or(0, |d| d.entries());
        let dur = SimDuration::from_secs_f64(
            self.costs.finalize_cpu_per_entry * entries as f64 * self.node_factor[task.node],
        );
        self.queue
            .schedule(at + dur, Ev::R1FinalizeDone(r, task.attempt));
    }

    fn red1_finalize_done(&mut self, at: SimTime, r: usize, bk: bool) {
        // First attempt to get here wins the speculative race; from here
        // on `self.reds1[r]` is the winner.
        self.resolve_red1_winner(at, r, bk);
        let driver = self.reds1[r].driver.take().expect("pipelined reducer");
        let mut out = std::mem::take(&mut self.reds1[r].out);
        let mut counters = std::mem::take(&mut self.reds1[r].counters);
        match driver.finish(self.first, &mut counters, &mut out) {
            Ok(report) => {
                let merge_read = report.store.spill_bytes;
                if merge_read > 0 {
                    self.disks[self.reds1[r].node].submit(at, merge_read);
                }
                counters.add(names::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                self.reds1[r].report = Some(report);
                self.reds1[r].out = out;
                self.reds1[r].counters = counters;
            }
            Err(e) => {
                self.fail_job(at, 1, r, e);
                return;
            }
        }
        self.tracer.span(
            0,
            SpanKind::ShuffleReduce,
            r,
            self.reds1[r].attempt,
            self.reds1[r].node,
            self.reds1[r].started,
            at,
        );
        self.red1_reduce_finished(at, r);
    }

    fn red1_grouped_start(&mut self, at: SimTime, r: usize, bk: bool) {
        let task = red1_mut!(self, r, bk);
        let n = task.buffer.len() as f64;
        let dur = SimDuration::from_secs_f64(
            self.costs.reduce_cpu_per_record * n * self.node_factor[task.node],
        );
        self.queue
            .schedule(at + dur, Ev::R1GroupedDone(r, task.attempt));
    }

    fn red1_grouped_done(&mut self, at: SimTime, r: usize, bk: bool) {
        // First attempt to get here wins the speculative race; from here
        // on `self.reds1[r]` is the winner.
        self.resolve_red1_winner(at, r, bk);
        let records = std::mem::take(&mut self.reds1[r].buffer);
        let mut counters = std::mem::take(&mut self.reds1[r].counters);
        match reduce_partition_barrier(self.first, records, &mut counters) {
            Ok(out) => {
                self.reds1[r].out = out;
                self.reds1[r].counters = counters;
            }
            Err(e) => {
                self.fail_job(at, 1, r, e);
                return;
            }
        }
        let start = self.reds1[r].shuffle_done_at.expect("sorted after shuffle");
        self.tracer.span(
            0,
            SpanKind::SortReduce,
            r,
            self.reds1[r].attempt,
            self.reds1[r].node,
            start,
            at,
        );
        self.red1_reduce_finished(at, r);
    }

    /// The reduce work of stage-1 partition `r` is complete: under the
    /// streaming handoff ship the remaining output and finish the task;
    /// under the barrier handoff write the materialized output to the
    /// DFS first.
    fn red1_reduce_finished(&mut self, at: SimTime, r: usize) {
        self.stage1_last_reduce_done = self.stage1_last_reduce_done.max(at);
        if self.streaming {
            self.reds1[r].state = RState::Done;
            self.ship_handoff(at, r);
            self.red1_done(at, r);
        } else {
            // The materialized intermediate is exactly what would have
            // been handed off: charge its nominal wire volume as the
            // replicated DFS write (symmetric with the Fetch2 read).
            let len = self.reds1[r].out.len();
            let real = self.handoff_real_bytes(r, 0, len);
            let task = &mut self.reds1[r];
            task.state = RState::Writing;
            task.write_started = at;
            let bytes = ((real as f64 * self.costs.chain_handoff_byte_scale) as u64).max(1);
            task.write_bytes = bytes;
            let node = task.node;
            let attempt = task.attempt;
            let targets = self.dfs.write_targets(NodeId(node as u32));
            task.write_parts_left = targets.len();
            let local_done = self.disks[node].submit(at, bytes);
            self.queue
                .schedule(local_done, Ev::R1OutputPart(r, attempt));
            for &replica in targets.iter().skip(1) {
                self.net.start_flow(
                    at,
                    NodeId(node as u32),
                    replica,
                    bytes,
                    Tag::Output1(r, attempt, replica),
                );
            }
        }
    }

    fn red1_output_part_done(&mut self, at: SimTime, r: usize) {
        self.reds1[r].write_parts_left -= 1;
        if self.reds1[r].write_parts_left > 0 {
            return;
        }
        self.reds1[r].state = RState::Done;
        self.tracer.span(
            0,
            SpanKind::Output,
            r,
            self.reds1[r].attempt,
            self.reds1[r].node,
            self.reds1[r].write_started,
            at,
        );
        self.red1_done(at, r);
    }

    fn red1_done(&mut self, at: SimTime, r: usize) {
        self.reds1_done += 1;
        self.slots.red_used[self.reds1[r].node] -= 1;
        if self.reds1_done == self.reds1.len() && self.stage1_complete.is_none() {
            self.stage1_complete = Some(at);
            self.tracer.stage_done(0, at);
        }
        // The downstream map may already hold everything it needs and be
        // idle: re-evaluate its completion.
        if self.streaming {
            let m = r;
            if self.maps2[m].state == M2State::Consuming {
                let when = self.maps2[m].cpu_free.max(at);
                self.queue
                    .schedule(when, Ev::M2Work(m, self.maps2[m].attempt));
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }

    // ------------------------------------------- stage-1 reduce speculation

    /// First-wins resolution, called the moment attempt `(r, bk)`
    /// finishes its reduce work — before any handoff ship or output
    /// write, so downstream only ever sees one winning attempt. A
    /// winning backup is promoted into the primary slot and the loser
    /// cancelled; a backup win also restarts the downstream map that
    /// consumed the losing attempt's stream (the promoted winner
    /// re-ships its byte-identical output when the map comes back).
    fn resolve_red1_winner(&mut self, at: SimTime, r: usize, bk: bool) {
        if bk {
            let backup = self.reds1_bk[r].take().expect("resolving backup attempt");
            let node = backup.node;
            let loser = std::mem::replace(&mut self.reds1[r], backup);
            self.cancel_red1_attempt(at, r, &loser);
            self.map_counters.add(names::SPECULATION_WON, 1);
            let attempt = self.reds1[r].attempt;
            self.tracer.speculation_mark(
                0,
                SpecTaskKind::Reduce,
                r,
                attempt,
                node,
                at,
                SpecEvent::Won,
            );
            self.restart_downstream_of(at, r);
        } else if let Some(backup) = self.reds1_bk[r].take() {
            self.cancel_red1_attempt(at, r, &backup);
        }
    }

    /// Cancels a losing stage-1 reduce attempt: its in-flight shuffle
    /// and handoff flows are rescinded (disk work already submitted is
    /// not — as with node failure) and its slot frees after the
    /// cancellation overhead.
    fn cancel_red1_attempt(&mut self, at: SimTime, r: usize, loser: &RedTask<A>) {
        let (node, attempt) = (loser.node, loser.attempt);
        self.net.cancel_where(at, |t| match *t {
            Tag::Shuffle1 {
                red, red_attempt, ..
            } => red == r && red_attempt == attempt,
            Tag::Handoff {
                red, red_attempt, ..
            } => red == r && red_attempt == attempt,
            _ => false,
        });
        self.map_counters.add(names::SPECULATION_CANCELLED, 1);
        self.tracer.speculation_mark(
            0,
            SpecTaskKind::Reduce,
            r,
            attempt,
            node,
            at,
            SpecEvent::Cancelled,
        );
        self.queue.schedule(
            at + SimDuration::from_secs_f64(self.costs.speculation_cancel_overhead_secs),
            Ev::SpecSlotFree(node),
        );
    }

    /// The stage-1 attempt downstream map `r` was consuming went away
    /// (lost the speculative race or died with a surviving backup):
    /// restart the map so the winning attempt's stream replays from the
    /// start. Composes with the fault-recovery downstream restarts — the
    /// same counter witnesses both.
    fn restart_downstream_of(&mut self, at: SimTime, r: usize) {
        let m = r;
        let was = self.maps2[m].state;
        if was == M2State::Pending {
            return;
        }
        if was == M2State::Done {
            self.maps2_done -= 1;
        } else if self.slots.alive[self.maps2[m].node] {
            self.slots.map_used[self.maps2[m].node] -= 1;
        }
        self.downstream_map_restarts += 1;
        let old = self.maps2[m].attempt;
        self.maps2[m].restart(self.cfg2.reducers);
        self.net.cancel_where(
            at,
            |t| matches!(*t, Tag::Handoff { map, map_attempt, .. } if map == m && map_attempt == old),
        );
        // Stage-2 reducers that had an in-flight or delivered flow from
        // this map must be allowed to re-request it.
        for red in &mut self.reds2 {
            if !red.flow_from.is_empty() && (red.fetched_from.len() <= m || !red.fetched_from[m]) {
                red.flow_from[m] = false;
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }

    /// Periodic straggler detection for stage-1 reducers, mirroring the
    /// single-job executor's speed trigger: a reducer placed on a node
    /// measurably slower than the alive-node median loses by its node's
    /// throughput deficit no matter how the shuffle goes, so it earns
    /// one backup attempt on another node as soon as real work has
    /// reached it. Shuffle-delivery counts are deliberately NOT a
    /// trigger (same rationale as the executor): the simulator models
    /// the network explicitly, so delivery lag always traces to fair
    /// link contention, never to a hidden slow node.
    fn spec_tick(&mut self, at: SimTime) {
        let SpeculationPolicy::Enabled {
            check_secs,
            slowdown,
        } = self.speculation
        else {
            return;
        };
        let mut facs: Vec<f64> = (0..self.p.nodes)
            .filter(|&n| self.slots.alive[n])
            .map(|n| self.node_factor[n])
            .collect();
        facs.sort_by(|a, b| a.partial_cmp(b).expect("factors are finite"));
        let median_factor = facs.get(facs.len() / 2).copied().unwrap_or(1.0);
        for r in 0..self.reds1.len() {
            let task = &self.reds1[r];
            let straggling = task.state == RState::Running
                && !self.red1_speculated[r]
                && task.fetched_from.iter().any(|&f| f)
                && self.node_factor[task.node] > slowdown * median_factor;
            if straggling {
                self.launch_red1_backup(at, r);
            }
        }
        if self.failure.is_none() && self.reds2_done < self.reds2.len() {
            self.queue
                .schedule(at + SimDuration::from_secs_f64(check_secs), Ev::SpecTick);
        }
    }

    /// Launches the (single) backup attempt for straggling stage-1
    /// reducer `r` on an alive node away from the straggler, if a
    /// reduce slot is free there. The backup starts pulling map output
    /// after the launch overhead; it never ships handoffs or heap
    /// samples — promotion happens only if it wins.
    fn launch_red1_backup(&mut self, at: SimTime, r: usize) {
        let avoid = self.reds1[r].node;
        // Fastest free node away from the straggler wins (LATE-style):
        // a backup on another slow node would just burn a slot.
        let Some(node) = (0..self.p.nodes)
            .filter(|&n| n != avoid && self.slots.has_free(false, n))
            .min_by(|&a, &b| {
                let key = |n: usize| (self.node_factor[n], self.slots.red_used[n], n);
                key(a).partial_cmp(&key(b)).expect("factors are finite")
            })
        else {
            return; // no slot free away from the straggler: retry next tick
        };
        self.red1_speculated[r] = true;
        self.slots.red_used[node] += 1;
        self.red1_tasks_run += 1;
        self.red1_seq[r] += 1;
        let attempt = self.red1_seq[r];
        let launch = at + SimDuration::from_secs_f64(self.costs.speculation_launch_overhead_secs);
        let n_maps = self.maps1.len();
        let mut task = RedTask::fresh();
        task.state = RState::Running;
        task.node = node;
        task.attempt = attempt;
        // `started` doubles as the feed gate: `map1_done` only feeds
        // backups whose launch overhead has elapsed.
        task.started = launch;
        task.cpu_free = launch;
        task.fetched_from = vec![false; n_maps];
        task.flow_from = vec![false; n_maps];
        if self.pipelined1() {
            match IncrementalDriver::new(self.first, &self.cfg1, r) {
                Ok(driver) => task.driver = Some(driver),
                Err(e) => {
                    self.failure = Some((at, format!("stage-1 backup driver init failed: {e}")));
                    return;
                }
            }
        }
        self.reds1_bk[r] = Some(task);
        self.map_counters.add(names::SPECULATION_LAUNCHED, 1);
        self.tracer.speculation_mark(
            0,
            SpecTaskKind::Reduce,
            r,
            attempt,
            node,
            at,
            SpecEvent::Launched,
        );
        self.queue.schedule(launch, Ev::Red1BackupStart(r, attempt));
    }

    // ---------------------------------------------------- cross-job edge

    /// Real bytes of upstream partition `r`'s output records
    /// `start..end`, as the downstream application accounts them.
    fn handoff_real_bytes(&self, r: usize, start: usize, end: usize) -> u64 {
        self.reds1[r].out[start..end]
            .iter()
            .map(|(k, v)| self.second.handoff_bytes(k, v) as u64)
            .sum()
    }

    /// Streaming: ship upstream partition `r`'s not-yet-shipped output
    /// increment to downstream map `r` as a handoff flow.
    fn ship_handoff(&mut self, at: SimTime, r: usize) {
        let m = r;
        if self.maps2[m].state != M2State::Consuming {
            return; // re-shipped by ensure_upstream when the map starts
        }
        let len = self.reds1[r].out.len();
        let start = self.reds1[r].handed;
        if start >= len {
            return;
        }
        let real = self.handoff_real_bytes(r, start, len);
        let wire = ((real as f64 * self.costs.chain_handoff_byte_scale) as u64).max(1);
        self.reds1[r].handed = len;
        self.handoff_edges += 1;
        self.handoff_records += (len - start) as u64;
        self.handoff_bytes += wire;
        self.tracer.handoff_mark(
            0,
            r,
            self.reds1[r].attempt,
            self.reds1[r].node,
            at,
            m,
            (len - start) as u64,
            wire,
        );
        self.net.start_flow(
            at,
            NodeId(self.reds1[r].node as u32),
            NodeId(self.maps2[m].node as u32),
            wire,
            Tag::Handoff {
                red: r,
                red_attempt: self.reds1[r].attempt,
                map: m,
                map_attempt: self.maps2[m].attempt,
                start,
                end: len,
            },
        );
    }

    /// A handoff (or barrier-mode fetch) increment arrived at downstream
    /// map `m`: adapt the records, charge the chained map CPU, queue the
    /// batch.
    fn handoff_delivery(&mut self, at: SimTime, r: usize, m: usize, start: usize, end: usize) {
        if self.stage2_first_work.is_none() {
            self.stage2_first_work = Some(at);
        }
        let batch: Vec<(B::InKey, B::InValue)> = self.reds1[r].out[start..end]
            .iter()
            .map(|(k, v)| self.second.adapt_input(k.clone(), v.clone()))
            .collect();
        let real = self.handoff_real_bytes(r, start, end);
        let task = &mut self.maps2[m];
        task.received += end - start;
        task.wire_bytes += ((real as f64 * self.costs.chain_handoff_byte_scale) as u64).max(1);
        let cost = self.costs.chain_map_cpu_per_record * batch.len() as f64;
        let dur = SimDuration::from_secs_f64(cost * self.node_factor[task.node]);
        let begin = task.cpu_free.max(at);
        task.cpu_free = begin + dur;
        task.queued.push_back(batch);
        self.queue
            .schedule(task.cpu_free, Ev::M2Work(m, task.attempt));
    }

    // --------------------------------------------------------- stage 2 map

    fn start_map2(&mut self, at: SimTime, m: usize, node: usize) {
        self.slots.map_used[node] += 1;
        self.map2_tasks_run += 1;
        let task = &mut self.maps2[m];
        task.state = M2State::Consuming;
        task.node = node;
        task.started = at;
        if self.streaming {
            self.ensure_upstream(at, m);
            // A finished upstream partition with nothing to hand off
            // will never trigger a delivery: evaluate completion now.
            if self.reds1[m].state == RState::Done && self.reds1[m].out.is_empty() {
                self.queue
                    .schedule(at, Ev::M2Work(m, self.maps2[m].attempt));
            }
        } else {
            self.start_fetch2(at, m);
        }
    }

    /// Streaming: a freshly (re)started downstream map needs everything
    /// its upstream reducer has emitted so far; reset the upstream
    /// cursor and re-ship.
    fn ensure_upstream(&mut self, at: SimTime, m: usize) {
        let r = m;
        self.reds1[r].handed = 0;
        if !self.reds1[r].out.is_empty() {
            self.ship_handoff(at, r);
        }
    }

    /// Barrier mode: read the materialized upstream partition from the
    /// DFS (source disk + network), one edge per downstream map.
    fn start_fetch2(&mut self, at: SimTime, m: usize) {
        let r = m;
        debug_assert_eq!(self.reds1[r].state, RState::Done);
        let src = if self.slots.alive[self.reds1[r].node] {
            self.reds1[r].node
        } else {
            // The writer died after materializing; the replicated block
            // is served from a surviving node.
            (0..self.p.nodes)
                .find(|&n| self.slots.alive[n])
                .expect("at least one node alive")
        };
        let len = self.reds1[r].out.len();
        let real = self.handoff_real_bytes(r, 0, len);
        let wire = ((real as f64 * self.costs.chain_handoff_byte_scale) as u64).max(1);
        self.handoff_edges += 1;
        self.handoff_records += len as u64;
        self.handoff_bytes += wire;
        self.tracer.handoff_mark(
            0,
            r,
            self.reds1[r].attempt,
            self.reds1[r].node,
            at,
            m,
            len as u64,
            wire,
        );
        self.disks[src].submit(at, wire);
        self.net.start_flow(
            at,
            NodeId(src as u32),
            NodeId(self.maps2[m].node as u32),
            wire,
            Tag::Fetch2(m, self.maps2[m].attempt),
        );
    }

    fn map2_work(&mut self, at: SimTime, m: usize) {
        if let Some(batch) = self.maps2[m].queued.pop_front() {
            let reducers = self.cfg2.reducers;
            let task = &mut self.maps2[m];
            let mut emitted = 0u64;
            {
                let parts = &mut task.parts;
                let mut emit = mr_core::FnEmit(|k: B::MapKey, v: B::MapValue| {
                    emitted += 1;
                    let p = self.pb.partition(&k, reducers);
                    parts[p].push((k, v));
                });
                for (k, v) in &batch {
                    self.second.map(k, v, &mut emit);
                }
            }
            self.map_counters.add(names::MAP_OUTPUT_RECORDS, emitted);
        }
        // All upstream output received and mapped => write the map output.
        let upstream_done = self.reds1[m].state == RState::Done;
        let task = &self.maps2[m];
        if upstream_done
            && task.received == self.reds1[m].out.len()
            && task.queued.is_empty()
            && task.cpu_free <= at
        {
            let task = &mut self.maps2[m];
            task.state = M2State::Writing;
            task.out_bytes =
                ((task.wire_bytes as f64 * self.costs.shuffle_selectivity) as u64).max(1);
            let node = task.node;
            let out_bytes = task.out_bytes;
            let attempt = task.attempt;
            let done = self.disks[node].submit(at, out_bytes);
            self.queue.schedule(done, Ev::M2Written(m, attempt));
        }
    }

    fn map2_done(&mut self, at: SimTime, m: usize) {
        self.maps2[m].state = M2State::Done;
        self.maps2_done += 1;
        self.slots.map_used[self.maps2[m].node] -= 1;
        self.tracer.span(
            1,
            SpanKind::Map,
            m,
            self.maps2[m].attempt,
            self.maps2[m].node,
            self.maps2[m].started,
            at,
        );
        for r in 0..self.reds2.len() {
            if self.reds2[r].state == RState::Running && !self.reds2[r].flow_from[m] {
                self.start_shuffle2_flow(at, m, r);
            }
        }
        for r in 0..self.reds2.len() {
            if self.reds2[r].state == RState::Running {
                self.check_shuffle2_complete(at, r);
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }

    // ------------------------------------------------------ stage 2 reduce

    fn start_reduce2(&mut self, at: SimTime, r: usize, node: usize) {
        self.slots.red_used[node] += 1;
        self.red2_tasks_run += 1;
        let n_maps = self.maps2.len();
        let task = &mut self.reds2[r];
        task.state = RState::Running;
        task.node = node;
        task.started = at;
        task.fetched_from = vec![false; n_maps];
        task.flow_from = vec![false; n_maps];
        task.cpu_free = at;
        if self.pipelined2() {
            match IncrementalDriver::new(self.second, &self.cfg2, r) {
                Ok(driver) => self.reds2[r].driver = Some(driver),
                Err(e) => {
                    self.failure = Some((at, format!("stage-2 driver init failed: {e}")));
                    return;
                }
            }
        }
        for m in 0..n_maps {
            if self.maps2[m].state == M2State::Done {
                self.start_shuffle2_flow(at, m, r);
            }
        }
    }

    fn start_shuffle2_flow(&mut self, at: SimTime, m: usize, r: usize) {
        let total_records: usize = self.maps2[m].parts.iter().map(Vec::len).sum();
        let part_records = self.maps2[m].parts[r].len();
        let bytes = if total_records > 0 {
            ((self.maps2[m].out_bytes as f64 * part_records as f64 / total_records as f64) as u64)
                .max(1)
        } else {
            (self.maps2[m].out_bytes / self.cfg2.reducers as u64).max(1)
        };
        self.reds2[r].flow_from[m] = true;
        self.net.start_flow(
            at,
            NodeId(self.maps2[m].node as u32),
            NodeId(self.reds2[r].node as u32),
            bytes,
            Tag::Shuffle2 {
                map: m,
                map_attempt: self.maps2[m].attempt,
                red: r,
                red_attempt: self.reds2[r].attempt,
            },
        );
    }

    fn shuffle2_delivery(&mut self, at: SimTime, m: usize, r: usize) {
        let batch = self.maps2[m].parts[r].clone();
        let total_records: usize = self.maps2[m].parts.iter().map(Vec::len).sum();
        let bytes = if total_records > 0 {
            (self.maps2[m].out_bytes as f64 * batch.len() as f64 / total_records as f64) as u64
        } else {
            self.maps2[m].out_bytes / self.cfg2.reducers as u64
        };
        let pipelined = self.pipelined2();
        let absorb = Self::absorb_cost(&self.cfg2, self.costs);
        let task = &mut self.reds2[r];
        task.fetched_from[m] = true;
        task.input_bytes += bytes;
        if pipelined {
            let cost = absorb * batch.len() as f64;
            let dur = SimDuration::from_secs_f64(cost * self.node_factor[task.node]);
            let start = task.cpu_free.max(at);
            task.cpu_free = start + dur;
            task.batches.push_back(batch);
            self.queue
                .schedule(task.cpu_free, Ev::R2Batch(r, task.attempt));
        } else {
            task.buffer.extend(batch);
        }
        self.check_shuffle2_complete(at, r);
    }

    fn check_shuffle2_complete(&mut self, at: SimTime, r: usize) {
        let all = self.reds2[r].fetched_from.iter().all(|&f| f)
            && self.reds2[r].fetched_from.len() == self.maps2.len()
            && self.maps2_done == self.maps2.len();
        if !all || self.reds2[r].shuffle_done_at.is_some() {
            return;
        }
        self.reds2[r].shuffle_done_at = Some(at);
        if self.pipelined2() {
            let when = self.reds2[r].cpu_free.max(at);
            self.queue
                .schedule(when, Ev::R2Batch(r, self.reds2[r].attempt));
        } else {
            self.tracer.span(
                1,
                SpanKind::Shuffle,
                r,
                self.reds2[r].attempt,
                self.reds2[r].node,
                self.reds2[r].started,
                at,
            );
            let n = self.reds2[r].buffer.len() as f64;
            let sort = self.costs.sort_cpu_coeff
                * n
                * n.max(2.0).log2()
                * self.node_factor[self.reds2[r].node];
            self.queue.schedule(
                at + SimDuration::from_secs_f64(sort),
                Ev::R2SortDone(r, self.reds2[r].attempt),
            );
        }
    }

    fn red2_batch(&mut self, at: SimTime, r: usize) {
        if let Some(batch) = self.reds2[r].batches.pop_front() {
            let node = self.reds2[r].node;
            let attempt = self.reds2[r].attempt;
            let task = &mut self.reds2[r];
            let driver = task.driver.as_mut().expect("pipelined reducer");
            for (k, v) in batch {
                if let Err(e) = driver.push(self.second, k, v, &mut task.out) {
                    self.fail_job(at, 2, r, e);
                    return;
                }
            }
            let bytes = driver.modelled_bytes();
            self.tracer.heap_sample(1, r, attempt, node, at, bytes);
            let io = driver.io_bytes();
            let delta = io - task.io_charged;
            if delta > 0 {
                task.io_charged = io;
                self.disks[node].submit(at, delta);
            }
        }
        let task = &self.reds2[r];
        if task.shuffle_done_at.is_some() && task.batches.is_empty() && task.cpu_free <= at {
            let task = &mut self.reds2[r];
            task.state = RState::Finalizing;
            let entries = task.driver.as_ref().map_or(0, |d| d.entries());
            let dur = SimDuration::from_secs_f64(
                self.costs.finalize_cpu_per_entry * entries as f64 * self.node_factor[task.node],
            );
            self.queue
                .schedule(at + dur, Ev::R2FinalizeDone(r, task.attempt));
        }
    }

    fn red2_finalize_done(&mut self, at: SimTime, r: usize) {
        let driver = self.reds2[r].driver.take().expect("pipelined reducer");
        let mut out = std::mem::take(&mut self.reds2[r].out);
        let mut counters = std::mem::take(&mut self.reds2[r].counters);
        match driver.finish(self.second, &mut counters, &mut out) {
            Ok(report) => {
                let merge_read = report.store.spill_bytes;
                if merge_read > 0 {
                    self.disks[self.reds2[r].node].submit(at, merge_read);
                }
                counters.add(names::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                self.reds2[r].report = Some(report);
                self.reds2[r].out = out;
                self.reds2[r].counters = counters;
            }
            Err(e) => {
                self.fail_job(at, 2, r, e);
                return;
            }
        }
        self.tracer.span(
            1,
            SpanKind::ShuffleReduce,
            r,
            self.reds2[r].attempt,
            self.reds2[r].node,
            self.reds2[r].started,
            at,
        );
        self.red2_start_output(at, r);
    }

    fn red2_grouped_start(&mut self, at: SimTime, r: usize) {
        let task = &self.reds2[r];
        let n = task.buffer.len() as f64;
        let dur = SimDuration::from_secs_f64(
            self.costs.reduce_cpu_per_record * n * self.node_factor[task.node],
        );
        self.queue
            .schedule(at + dur, Ev::R2GroupedDone(r, task.attempt));
    }

    fn red2_grouped_done(&mut self, at: SimTime, r: usize) {
        let records = std::mem::take(&mut self.reds2[r].buffer);
        let mut counters = std::mem::take(&mut self.reds2[r].counters);
        match reduce_partition_barrier(self.second, records, &mut counters) {
            Ok(out) => {
                self.reds2[r].out = out;
                self.reds2[r].counters = counters;
            }
            Err(e) => {
                self.fail_job(at, 2, r, e);
                return;
            }
        }
        let start = self.reds2[r].shuffle_done_at.expect("sorted after shuffle");
        self.tracer.span(
            1,
            SpanKind::SortReduce,
            r,
            self.reds2[r].attempt,
            self.reds2[r].node,
            start,
            at,
        );
        self.red2_start_output(at, r);
    }

    fn red2_start_output(&mut self, at: SimTime, r: usize) {
        let task = &mut self.reds2[r];
        task.state = RState::Writing;
        task.write_started = at;
        let bytes = ((task.input_bytes as f64 * self.costs.output_selectivity) as u64).max(1);
        task.write_bytes = bytes;
        let node = task.node;
        let attempt = task.attempt;
        let targets = self.dfs.write_targets(NodeId(node as u32));
        task.write_parts_left = targets.len();
        let local_done = self.disks[node].submit(at, bytes);
        self.queue
            .schedule(local_done, Ev::R2OutputPart(r, attempt));
        for &replica in targets.iter().skip(1) {
            self.net.start_flow(
                at,
                NodeId(node as u32),
                replica,
                bytes,
                Tag::Output2(r, attempt, replica),
            );
        }
    }

    fn red2_output_part_done(&mut self, at: SimTime, r: usize) {
        self.reds2[r].write_parts_left -= 1;
        if self.reds2[r].write_parts_left > 0 {
            return;
        }
        let task = &mut self.reds2[r];
        task.state = RState::Done;
        self.reds2_done += 1;
        let (node, attempt, write_started) = (task.node, task.attempt, task.write_started);
        if self.slots.alive[node] {
            self.slots.red_used[node] -= 1;
        }
        self.tracer
            .span(1, SpanKind::Output, r, attempt, node, write_started, at);
        if self.reds2_done == self.reds2.len() {
            self.tracer.stage_done(1, at);
        }
        self.queue.schedule(at, Ev::Schedule);
    }

    // -------------------------------------------------------------- flows

    fn handle_flow(&mut self, at: SimTime, tag: Tag) {
        match tag {
            Tag::Fetch1(m, a) => {
                if self.maps1[m].attempt == a && self.maps1[m].state == MState::Fetching {
                    self.map1_compute(at, m);
                }
            }
            Tag::Shuffle1 {
                map,
                map_attempt,
                red,
                red_attempt,
            } => {
                if self.maps1[map].attempt == map_attempt {
                    if let Some(bk) = self.red1_slot(red, red_attempt) {
                        if red1_mut!(self, red, bk).state == RState::Running {
                            self.shuffle1_delivery(at, map, red, bk);
                        }
                    }
                }
            }
            Tag::Handoff {
                red,
                red_attempt,
                map,
                map_attempt,
                start,
                end,
            } => {
                if self.reds1[red].attempt == red_attempt
                    && self.maps2[map].attempt == map_attempt
                    && self.maps2[map].state == M2State::Consuming
                {
                    self.handoff_delivery(at, red, map, start, end);
                }
            }
            Tag::Fetch2(m, a) => {
                if self.maps2[m].attempt == a && self.maps2[m].state == M2State::Consuming {
                    let len = self.reds1[m].out.len();
                    self.handoff_delivery(at, m, m, 0, len);
                }
            }
            Tag::Shuffle2 {
                map,
                map_attempt,
                red,
                red_attempt,
            } => {
                if self.maps2[map].attempt == map_attempt
                    && self.reds2[red].attempt == red_attempt
                    && self.reds2[red].state == RState::Running
                {
                    self.shuffle2_delivery(at, map, red);
                }
            }
            Tag::Output1(r, a, replica) => {
                if self.reds1[r].attempt == a && self.reds1[r].state == RState::Writing {
                    let bytes = self.reds1[r].write_bytes.max(1);
                    let done = self.disks[replica.0 as usize].submit(at, bytes);
                    self.queue
                        .schedule(done, Ev::R1OutputPart(r, self.reds1[r].attempt));
                }
            }
            Tag::Output2(r, a, replica) => {
                if self.reds2[r].attempt == a && self.reds2[r].state == RState::Writing {
                    let bytes = self.reds2[r].write_bytes.max(1);
                    let done = self.disks[replica.0 as usize].submit(at, bytes);
                    self.queue
                        .schedule(done, Ev::R2OutputPart(r, self.reds2[r].attempt));
                }
            }
        }
    }

    fn fail_job(&mut self, at: SimTime, stage: usize, r: usize, e: mr_core::MrError) {
        self.failure = Some((at, format!("stage-{stage} reducer {r} failed: {e}")));
    }

    // ------------------------------------------------------------- faults

    fn fail_node(&mut self, at: SimTime, n: usize) {
        if !self.slots.alive[n] {
            return;
        }
        self.slots.fail_node(n);
        if !self.slots.any_alive() {
            self.failure = Some((at, "every node has failed; chain lost".to_string()));
            return;
        }
        let cancelled = self.net.fail_node(at, NodeId(n as u32));
        for cid in self.dfs.fail_node(NodeId(n as u32)) {
            self.dfs.restore_chunk(cid);
        }

        // Speculative backups on the dead node are dropped (death is not
        // a cancellation — no overhead, no counter); a dead *primary*
        // with a surviving backup promotes the backup in place of a
        // restart, though the downstream map that consumed the dead
        // attempt's stream must still restart.
        let mut promoted = vec![false; self.reds1.len()];
        for r in 0..self.reds1.len() {
            if self.reds1_bk[r].as_ref().is_some_and(|t| t.node == n) {
                self.reds1_bk[r] = None;
            }
        }
        for (r, promo) in promoted.iter_mut().enumerate() {
            let dead_primary = self.reds1[r].node == n
                && self.reds1[r].state != RState::Done
                && self.reds1[r].state != RState::Pending;
            if dead_primary {
                if let Some(backup) = self.reds1_bk[r].take() {
                    self.reds1[r] = backup;
                    *promo = true;
                }
            }
        }

        // Decide the restart sets to a fixpoint: an upstream reducer
        // restart forces its downstream map to restart; a downstream map
        // that must re-run but whose upstream stream lived only on a
        // now-dead node (streaming mode: never materialized) forces the
        // upstream reducer to re-run too.
        let r1 = self.reds1.len();
        let mut reds1_restart = vec![false; r1];
        let mut maps2_restart = vec![false; r1];
        let mut reds2_restart = vec![false; self.reds2.len()];
        for (r, task) in self.reds1.iter().enumerate() {
            if task.node == n && task.state != RState::Done && task.state != RState::Pending {
                reds1_restart[r] = true;
            }
        }
        for (m, task) in self.maps2.iter().enumerate() {
            if task.node == n && task.state != M2State::Done && task.state != M2State::Pending {
                maps2_restart[m] = true;
            }
        }
        for (r, task) in self.reds2.iter().enumerate() {
            if task.node == n && task.state != RState::Done && task.state != RState::Pending {
                reds2_restart[r] = true;
            }
        }
        // A promoted backup carries on, but its stream starts over for
        // the consumer of the dead attempt.
        for (r, &p) in promoted.iter().enumerate() {
            if p {
                maps2_restart[r] = true;
            }
        }
        // Completed stage-2 maps whose node died must re-run if some
        // stage-2 reducer still needs their shuffle output.
        for (m, task) in self.maps2.iter().enumerate() {
            if task.state == M2State::Done
                && !self.slots.alive[task.node]
                && self.reds2.iter().enumerate().any(|(r, red)| {
                    red.state != RState::Done
                        && (reds2_restart[r] || red.fetched_from.len() <= m || !red.fetched_from[m])
                })
            {
                maps2_restart[m] = true;
            }
        }
        loop {
            let mut changed = false;
            for r in 0..r1 {
                if reds1_restart[r] && !maps2_restart[r] {
                    // The upstream attempt (whose stream the downstream
                    // map consumed) died: the downstream map restarts.
                    maps2_restart[r] = true;
                    changed = true;
                }
                if maps2_restart[r] && !reds1_restart[r] && self.streaming {
                    let up = &self.reds1[r];
                    // A restarting downstream map needs the stream again;
                    // if it was never materialized and its producer's
                    // node is gone, the producer re-runs.
                    if up.state == RState::Done && !self.slots.alive[up.node] {
                        reds1_restart[r] = true;
                        changed = true;
                    }
                }
                // Streaming: a dead node holding a completed upstream
                // reducer whose consumer still needs data forces a
                // re-run even when the consumer itself survives.
                if self.streaming && !reds1_restart[r] {
                    let up = &self.reds1[r];
                    let down = &self.maps2[r];
                    if up.state == RState::Done
                        && !self.slots.alive[up.node]
                        && down.state == M2State::Consuming
                        && down.received < up.out.len()
                    {
                        reds1_restart[r] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Apply stage-2 reducer restarts (rescheduled by `Schedule`).
        for (r, restart) in reds2_restart.iter().enumerate() {
            if *restart {
                if self.slots.alive[self.reds2[r].node] {
                    self.slots.red_used[self.reds2[r].node] -= 1;
                }
                self.reds2[r].restart();
            }
        }
        // Apply downstream map restarts. A restart whose own node
        // survived was forced purely by the upstream attempt dying —
        // the chain-specific recovery path.
        for (m, restart) in maps2_restart.iter().enumerate() {
            if *restart {
                let was = self.maps2[m].state;
                if was != M2State::Pending {
                    let reducers = self.cfg2.reducers;
                    if was == M2State::Done {
                        // Its map slot was released at completion.
                        self.maps2_done -= 1;
                    } else if self.slots.alive[self.maps2[m].node] {
                        self.slots.map_used[self.maps2[m].node] -= 1;
                        self.downstream_map_restarts += 1;
                    }
                    self.maps2[m].restart(reducers);
                    // Stage-2 reducers that had an in-flight or delivered
                    // flow from this map must be allowed to re-request it.
                    for red in &mut self.reds2 {
                        if !red.flow_from.is_empty()
                            && (red.fetched_from.len() <= m || !red.fetched_from[m])
                        {
                            red.flow_from[m] = false;
                        }
                    }
                }
            }
        }
        // Apply stage-1 reducer restarts (a completed one re-entering
        // Pending also reopens stage-1 completion).
        for (r, restart) in reds1_restart.iter().enumerate() {
            if *restart {
                if self.reds1[r].state == RState::Done {
                    // Its reduce slot was released at completion.
                    self.reds1_done -= 1;
                    self.stage1_complete = None;
                }
                // Restamp from the shared sequence so the new attempt
                // never collides with a (cancelled) speculative one.
                self.red1_seq[r] += 1;
                let seq = self.red1_seq[r];
                let task = &mut self.reds1[r];
                task.restart();
                task.attempt = seq;
            }
        }
        // Stage-1 maps: mirror the single-job executor — running tasks on
        // the dead node restart; completed output on any dead node
        // re-runs when a (possibly just-restarted) reducer still needs it.
        for m in 0..self.maps1.len() {
            let needs_rerun = match self.maps1[m].state {
                MState::Fetching | MState::Computing | MState::Writing => self.maps1[m].node == n,
                MState::Done => {
                    !self.slots.alive[self.maps1[m].node]
                        && self
                            .reds1
                            .iter()
                            .chain(self.reds1_bk.iter().flatten())
                            .any(|r| {
                                r.state != RState::Done
                                    && (r.fetched_from.len() <= m || !r.fetched_from[m])
                            })
                }
                _ => false,
            };
            if needs_rerun {
                if self.maps1[m].state == MState::Done {
                    self.maps1_done -= 1;
                }
                let task = &mut self.maps1[m];
                task.state = MState::Pending;
                task.attempt += 1;
                task.output = None;
                task.node = usize::MAX;
                for r in self
                    .reds1
                    .iter_mut()
                    .chain(self.reds1_bk.iter_mut().flatten())
                {
                    if !r.flow_from.is_empty() && !r.fetched_from[m] {
                        r.flow_from[m] = false;
                    }
                }
            }
        }
        // Cancelled flows whose surviving endpoint still waits on them.
        for tag in cancelled {
            match tag {
                Tag::Fetch1(m, a) => {
                    if self.maps1[m].attempt == a && self.maps1[m].state == MState::Fetching {
                        self.start_fetch1(at, m);
                    }
                }
                Tag::Fetch2(m, a) => {
                    if self.maps2[m].attempt == a && self.maps2[m].state == M2State::Consuming {
                        self.start_fetch2(at, m);
                    }
                }
                Tag::Handoff {
                    red,
                    red_attempt,
                    map,
                    map_attempt,
                    start,
                    end: _,
                } => {
                    // A cancelled increment from a *surviving* producer
                    // to a *surviving* consumer cannot happen (one
                    // endpoint was on the dead node); anything else is
                    // covered by the restart fixpoint. The only live
                    // case: producer alive, consumer restarted — handled
                    // when the consumer's new attempt re-ships. Guard for
                    // the symmetric race anyway: re-ship if both current.
                    if self.reds1[red].attempt == red_attempt
                        && self.maps2[map].attempt == map_attempt
                        && self.maps2[map].state == M2State::Consuming
                        && self.slots.alive[self.reds1[red].node]
                    {
                        self.reds1[red].handed = self.reds1[red].handed.min(start);
                        self.ship_handoff(at, red);
                    }
                }
                Tag::Shuffle1 { .. } | Tag::Shuffle2 { .. } => {
                    // Handled by the map-rerun / restart logic above:
                    // flow_from was reset, so the output is re-requested.
                }
                Tag::Output1(r, a, _replica) => {
                    if self.reds1[r].attempt == a && self.reds1[r].state == RState::Writing {
                        self.red1_output_part_done(at, r);
                    }
                }
                Tag::Output2(r, a, _replica) => {
                    if self.reds2[r].attempt == a && self.reds2[r].state == RState::Writing {
                        self.red2_output_part_done(at, r);
                    }
                }
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }
}
