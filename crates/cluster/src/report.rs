//! Results of a simulated run.

use crate::timeline::Timeline;
use mr_core::{Application, JobOutput, TraceLog};
use mr_sim::SimTime;

/// How a simulated job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion at the given instant.
    Completed {
        /// Job completion time.
        at: SimTime,
    },
    /// Died (e.g. reducer OOM under the in-memory policy), Figure 5(a).
    Failed {
        /// Time of death.
        at: SimTime,
        /// Human-readable cause.
        reason: String,
    },
    /// A [`DeadlinePolicy`](mr_core::DeadlinePolicy) fired before the job
    /// finished; the output carries the latest per-reducer snapshot
    /// estimates instead of exact results. Deterministic: the deadline is
    /// a fixed virtual-time tick, so the same run always answers with the
    /// same snapshot stream prefix.
    Approximate {
        /// The deadline instant.
        at: SimTime,
    },
}

impl Outcome {
    /// Completion time, if the job completed (exactly).
    pub fn completion_secs(&self) -> Option<f64> {
        match self {
            Outcome::Completed { at } => Some(at.as_secs_f64()),
            Outcome::Failed { .. } | Outcome::Approximate { .. } => None,
        }
    }

    /// Whether the job completed exactly.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// Whether a deadline cut the job short with a snapshot-based answer.
    pub fn is_approximate(&self) -> bool {
        matches!(self, Outcome::Approximate { .. })
    }
}

/// Everything a simulated run reports.
pub struct SimReport<A: Application> {
    /// Completion or failure.
    pub outcome: Outcome,
    /// The job's output. Present on completion (exact results) and on
    /// deadline expiry (each partition holds the latest published
    /// snapshot estimate); absent on failure.
    pub output: Option<JobOutput<A>>,
    /// The run's full structured trace — every span, counter delta, and
    /// mark the simulator recorded, in deterministic order. Query it with
    /// [`mr_core::TraceQuery`]. Empty when the effective
    /// [`TracePolicy`](mr_core::TracePolicy) is `Disabled`.
    pub trace: TraceLog,
    /// Recorded task spans and heap samples — a compatibility view
    /// derived from `trace` (empty when tracing is disabled).
    pub timeline: Timeline,
    /// First map-task completion — the start of mapper slack (§3.2).
    pub first_map_done: SimTime,
    /// Last map-task completion.
    pub last_map_done: SimTime,
    /// When the last reducer finished fetching map output.
    pub shuffle_done: SimTime,
    /// Nominal bytes moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Map tasks executed (including re-executions after faults).
    pub map_tasks_run: usize,
    /// Reduce tasks executed (including re-executions).
    pub reduce_tasks_run: usize,
    /// Partial-result snapshots published during the run (also recorded
    /// individually as [`Timeline::snapshots`](crate::Timeline) marks;
    /// estimate contents ride in `output.snapshots`).
    pub snapshots_taken: usize,
}

impl<A: Application> SimReport<A> {
    /// Mapper slack as defined in §3.2: "the time gap between when the
    /// first mappers complete and when the shuffle stage completes".
    pub fn mapper_slack_secs(&self) -> f64 {
        (self.shuffle_done.as_secs_f64() - self.first_map_done.as_secs_f64()).max(0.0)
    }

    /// Convenience: completion time in seconds, panicking on failed runs
    /// (bench harnesses use this after checking the outcome).
    pub fn completion_secs(&self) -> f64 {
        self.outcome
            .completion_secs()
            .expect("job did not complete")
    }
}
