//! The unified trace pipeline's three contracts:
//!
//! 1. **Determinism** — the same seed yields a byte-identical canonical
//!    trace stream, on both engines, in the simulator and in the local
//!    executor.
//! 2. **Pure observation** — turning tracing off changes nothing the
//!    job computes: partitions, counters (including spill cadence), and
//!    completion are byte-identical; only the log disappears.
//! 3. **Faithful compatibility views** — `Counters`, `Timeline`, and
//!    span/heap queries derived from the trace reproduce the exact
//!    values the pre-redesign direct-recording code produced (pinned
//!    here), including under a mid-run node kill.

use mr_apps::wordcount::WordCount;
use mr_cluster::{ClusterParams, CostModel, FnInput, SimExecutor, SimReport, SpanKind};
use mr_core::counters::names;
use mr_core::local::LocalRunner;
use mr_core::{
    Counters, Engine, HashPartitioner, JobConfig, MemoryPolicy, TracePolicy, TraceQuery,
};
use mr_workloads::TextWorkload;
use std::collections::BTreeMap;

fn small_cluster(seed: u64) -> ClusterParams {
    let mut p = ClusterParams::paper_testbed(seed);
    p.nodes = 4;
    p.map_slots = 2;
    p.reduce_slots = 2;
    p
}

fn workload(seed: u64) -> TextWorkload {
    TextWorkload {
        seed,
        vocab: 400,
        zipf_s: 1.0,
        lines_per_chunk: 60,
        words_per_line: 6,
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mr-trace-pipeline-{tag}-{}", std::process::id()))
}

/// The pinned fault-torture scenario: 12 chunks of seed-11 WordCount on
/// the 4-node testbed, one node killed at t=8 s.
fn sim_run(engine: Engine, policy: TracePolicy) -> SimReport<WordCount> {
    let w = workload(11);
    let cfg = JobConfig::new(6)
        .engine(engine)
        .seed(11)
        .trace(policy)
        .scratch_dir(scratch("sim"));
    SimExecutor::new(small_cluster(11)).run_with_faults(
        &WordCount,
        &FnInput(move |c| w.chunk(c)),
        12,
        &cfg,
        &CostModel::default_for_tests(),
        &HashPartitioner,
        &[(8.0, 1)],
    )
}

fn local_splits() -> Vec<Vec<(u64, String)>> {
    let w = workload(11);
    (0..6).map(|c| w.chunk(c)).collect()
}

fn counter_map(c: &Counters) -> BTreeMap<String, u64> {
    c.iter().map(|(k, v)| (k.to_string(), v)).collect()
}

fn span_count(q: &TraceQuery, kind: SpanKind) -> usize {
    q.spans_by_kind(kind).len()
}

#[test]
fn same_seed_sim_trace_is_byte_identical() {
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let a = sim_run(engine.clone(), TracePolicy::Enabled);
        let b = sim_run(engine.clone(), TracePolicy::Enabled);
        let sa = a.trace.to_canonical_string();
        let sb = b.trace.to_canonical_string();
        assert!(
            sa.starts_with("trace-log/v1\n") && sa.lines().count() > 10,
            "{engine:?}: trace suspiciously small"
        );
        assert_eq!(sa, sb, "{engine:?}: same seed produced different traces");
    }
}

#[test]
fn same_seed_local_trace_is_byte_identical() {
    // Determinism across *pool widths*, not just across repeat runs:
    // task state machines claim splits from a shared queue, but every
    // span is scoped by split/reducer index and shuffle batch
    // boundaries are cut by byte budget, so which OS thread ran what
    // leaves no fingerprint in the canonical stream.
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let mut traces = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = JobConfig::new(4)
                .engine(engine.clone())
                .pool_workers(workers)
                .scratch_dir(scratch("local-det"));
            let run = || {
                LocalRunner::new(4)
                    .run(&WordCount, local_splits(), &cfg)
                    .expect("local run")
            };
            let (a, b) = (run(), run());
            let sa = a.trace.to_canonical_string();
            assert!(sa.lines().count() > 10, "{engine:?}: trace too small");
            assert_eq!(
                sa,
                b.trace.to_canonical_string(),
                "{engine:?}/{workers}w: same input produced different local traces"
            );
            // Batch accounting is part of the determinism claim now
            // that boundaries are cut by byte budget rather than
            // channel timing: pinned, identical at every width.
            if matches!(engine, Engine::BarrierLess { .. }) {
                assert_eq!(
                    a.counters.get(names::SHUFFLE_BATCHES),
                    24,
                    "{engine:?}/{workers}w: batch count moved"
                );
                assert_eq!(
                    a.counters.get(names::SHUFFLE_BATCH_REUSE),
                    0,
                    "{engine:?}/{workers}w: modelled reuse moved"
                );
            }
            traces.push((workers, sa));
        }
        let (_, ref one_worker) = traces[0];
        for (workers, trace) in &traces[1..] {
            assert_eq!(
                trace, one_worker,
                "{engine:?}: {workers}-worker trace differs from 1-worker trace"
            );
        }
    }
}

#[test]
fn sim_tracing_off_is_pure_observation() {
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let on = sim_run(engine.clone(), TracePolicy::Enabled);
        let off = sim_run(engine.clone(), TracePolicy::Disabled);
        assert!(!on.trace.is_empty(), "{engine:?}: enabled log is empty");
        assert!(off.trace.is_empty(), "{engine:?}: disabled log not empty");
        assert!(off.timeline.spans.is_empty(), "{engine:?}: view not empty");
        assert_eq!(on.outcome, off.outcome, "{engine:?}: outcome changed");
        let (a, b) = (on.output.unwrap(), off.output.unwrap());
        assert_eq!(
            a.partitions, b.partitions,
            "{engine:?}: tracing changed the answer"
        );
        // The enabled side's counters are *derived* from the trace; the
        // disabled side's come from the legacy direct merge. Equality
        // here is the whole compatibility claim, spill cadence included.
        assert_eq!(a.counters, b.counters, "{engine:?}: counters diverged");
    }
}

#[test]
fn local_tracing_off_preserves_output_and_spill_cadence() {
    // A spill threshold low enough to trip on every reducer, so the
    // spill cadence (files written, bytes, merge passes) is a live
    // signal and not trivially zero. Pinned to a one-worker pool: spill
    // instants depend on record-arrival interleaving, so with wider
    // pools the cadence varies run to run (with or without tracing)
    // and an on-vs-off comparison would measure scheduling, not
    // observation.
    let engine = Engine::BarrierLess {
        memory: MemoryPolicy::SpillMerge {
            threshold_bytes: 4 << 10,
        },
    };
    let run = |policy: TracePolicy| {
        let cfg = JobConfig::new(4)
            .engine(engine.clone())
            .trace(policy)
            .pool_workers(1)
            .scratch_dir(scratch("local-spill"));
        LocalRunner::new(1)
            .run(&WordCount, local_splits(), &cfg)
            .expect("local spill run")
    };
    let on = run(TracePolicy::Enabled);
    let off = run(TracePolicy::Disabled);
    assert!(!on.trace.is_empty() && off.trace.is_empty());
    assert!(
        on.counters.get(names::SPILL_FILES) > 0,
        "threshold never tripped — the cadence comparison is vacuous"
    );
    assert_eq!(on.partitions, off.partitions, "tracing changed the answer");
    assert_eq!(
        counter_map(&on.counters),
        counter_map(&off.counters),
        "derived counters diverged from the direct merge"
    );
}

/// Pinned outputs of the pre-redesign direct-recording code for the
/// fault-torture scenario. The trace-derived views must reproduce them
/// exactly — same keys, same values, same span population.
#[test]
fn legacy_views_from_trace_match_pinned_pre_redesign_values() {
    // --- barrier engine ---------------------------------------------
    let r = sim_run(Engine::Barrier, TracePolicy::Enabled);
    assert!((r.completion_secs() - 117.373718).abs() < 1e-5);
    assert_eq!(r.map_tasks_run, 14);
    assert_eq!(r.reduce_tasks_run, 8);
    let out = r.output.as_ref().unwrap();
    let expect: BTreeMap<String, u64> = [
        ("map.output.records", 4320),
        ("reduce.groups", 375),
        ("reduce.input.records", 4320),
        ("reduce.output.records", 375),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    assert_eq!(counter_map(&out.counters), expect);
    assert_eq!(counter_map(&Counters::from_trace(&r.trace)), expect);
    let q = TraceQuery::new(&r.trace);
    assert_eq!(span_count(&q, SpanKind::Map), 12);
    assert_eq!(span_count(&q, SpanKind::Shuffle), 6);
    assert_eq!(span_count(&q, SpanKind::SortReduce), 6);
    assert_eq!(span_count(&q, SpanKind::ShuffleReduce), 0);
    assert_eq!(span_count(&q, SpanKind::Output), 6);
    assert_eq!(q.heap_samples(0).len(), 0);
    assert_eq!(r.timeline.spans.len(), 12 + 6 + 6 + 6);

    // --- barrier-less engine ----------------------------------------
    let r = sim_run(Engine::barrierless(), TracePolicy::Enabled);
    assert!((r.completion_secs() - 64.801889).abs() < 1e-5);
    assert_eq!(r.map_tasks_run, 14);
    assert_eq!(r.reduce_tasks_run, 8);
    let out = r.output.as_ref().unwrap();
    let expect: BTreeMap<String, u64> = [
        ("map.output.records", 4320),
        ("reduce.input.records", 4320),
        ("reduce.output.records", 375),
        ("snapshot.bytes", 0),
        ("snapshot.count", 0),
        ("snapshot.records", 0),
        ("spill.bytes", 0),
        ("spill.files", 0),
        ("spill.merged.states", 0),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    assert_eq!(counter_map(&out.counters), expect);
    assert_eq!(counter_map(&Counters::from_trace(&r.trace)), expect);
    let q = TraceQuery::new(&r.trace);
    assert_eq!(span_count(&q, SpanKind::Map), 12);
    assert_eq!(span_count(&q, SpanKind::Shuffle), 0);
    assert_eq!(span_count(&q, SpanKind::SortReduce), 0);
    assert_eq!(span_count(&q, SpanKind::ShuffleReduce), 6);
    assert_eq!(span_count(&q, SpanKind::Output), 6);
    assert_eq!(q.heap_samples(0).len(), 72);
    assert_eq!(r.timeline.heap.len(), 72);
}
