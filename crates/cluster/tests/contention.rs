//! Contention and fairness suite for the multi-tenant service
//! simulator: N tenants × M jobs on a deliberately small K-slot
//! cluster, so every scheduling decision is contested.
//!
//! What is pinned here, per the service-layer contract:
//!
//! * **Weighted-fair slot shares** — while every tenant still has work
//!   (the "all-saturated window"), each tenant's busy slot-seconds are
//!   proportional to its weight, within tolerance, across three
//!   different tenant-weight configurations.
//! * **No starvation** — a weight-1 tenant sharing the cluster with a
//!   weight-1000 tenant still finishes its work before the heavy
//!   tenant's backlog drains.
//! * **Priority preemption** — a higher-priority tenant arriving at a
//!   saturated cluster evicts running lower-priority work and finishes
//!   long before the batch tenant's tail.
//! * **Determinism** — the same seed gives the same schedule, eviction
//!   count and trace, and every completed job's output bytes are
//!   identical to running the job alone (`analytic_output`), whatever
//!   the weights did to the schedule.

use mr_cluster::{
    analytic_output, ServiceParams, ServiceSimExecutor, ServiceSimReport, SimJobSpec,
};
use mr_core::{Application, Emit, HashPartitioner, TenantSpec, TraceQuery};

/// Word count over synthetic lines — the same app shape the in-crate
/// service tests use, small enough that analytic outputs are cheap.
struct CountApp;

impl Application for CountApp {
    type InKey = u64;
    type InValue = String;
    type MapKey = String;
    type MapValue = u64;
    type OutKey = String;
    type OutValue = u64;
    type State = u64;
    type Shared = ();

    fn map(&self, _: &u64, value: &String, out: &mut dyn Emit<String, u64>) {
        for w in value.split_whitespace() {
            out.emit(w.to_string(), 1);
        }
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &String,
        values: Vec<u64>,
        _: &mut (),
        out: &mut dyn Emit<String, u64>,
    ) {
        out.emit(key.clone(), values.iter().sum());
    }

    fn init(&self, _: &String) -> u64 {
        0
    }

    fn absorb(
        &self,
        _: &String,
        state: &mut u64,
        v: u64,
        _: &mut (),
        _: &mut dyn Emit<String, u64>,
    ) {
        *state += v;
    }

    fn merge(&self, _: &String, a: u64, b: u64) -> u64 {
        a + b
    }

    fn finalize(&self, key: String, state: u64, _: &mut (), out: &mut dyn Emit<String, u64>) {
        out.emit(key, state);
    }
}

fn splits(tag: usize, n: usize) -> Vec<Vec<(u64, String)>> {
    let vocab = ["alpha", "beta", "gamma", "delta", "epsilon"];
    (0..n)
        .map(|s| {
            (0..6)
                .map(|l| {
                    (
                        (s * 6 + l) as u64,
                        format!("{} {}", vocab[(tag + s + l) % 5], vocab[(tag * 2 + l) % 5]),
                    )
                })
                .collect()
        })
        .collect()
}

fn spec(tenant: usize, at: f64, tag: usize, chained: bool) -> SimJobSpec<CountApp> {
    SimJobSpec {
        tenant,
        submit_at_secs: at,
        splits: splits(tag, 4),
        reducers: 3,
        chained,
    }
}

/// A small contested cluster: 4 nodes × (2 map + 2 reduce) slots.
fn small_cluster(tenants: usize, seed: u64) -> ServiceParams {
    let mut params = ServiceParams::new(tenants);
    params.cluster.seed = seed;
    params.cluster.nodes = 4;
    params.cluster.map_slots = 2;
    params.cluster.reduce_slots = 2;
    params
}

/// Per-tenant busy slot-seconds clipped to the all-saturated window
/// `[0, T]`, where `T` is the earliest time any tenant *last started*
/// a task. After `T` some tenant may have run out of work, so slot
/// shares legitimately stop tracking weights; before it, every tenant
/// is contending and the deficit-fair pick is what decides.
fn clipped_busy_secs(report: &ServiceSimReport<CountApp>, tenants: usize) -> Vec<f64> {
    let q = TraceQuery::new(&report.trace);
    let window_end = (0..tenants)
        .map(|t| {
            q.tenant_spans(t as u32)
                .iter()
                .map(|s| s.start.as_secs_f64())
                .fold(0.0_f64, f64::max)
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        window_end.is_finite() && window_end > 0.0,
        "every tenant must have started work: window end {window_end}"
    );
    (0..tenants)
        .map(|t| {
            q.tenant_spans(t as u32)
                .iter()
                .map(|s| {
                    let start = s.start.as_secs_f64();
                    let end = s.end.as_secs_f64().min(window_end);
                    (end - start).max(0.0)
                })
                .sum()
        })
        .collect()
}

/// Runs one weight configuration to completion: 3 tenants × 8 jobs,
/// all submitted at t=0, all expected to complete with solo bytes.
fn run_weight_config(weights: [u32; 3], seed: u64) -> ServiceSimReport<CountApp> {
    let mut params = small_cluster(3, seed);
    for (t, &w) in weights.iter().enumerate() {
        params = params.tenant(t, TenantSpec::default().weight(w));
    }
    let jobs: Vec<SimJobSpec<CountApp>> = (0..24).map(|i| spec(i % 3, 0.0, i, false)).collect();
    let report = ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[]).unwrap();
    assert!(report.failure.is_none(), "weights {weights:?}: run failed");
    for (i, job) in report.jobs.iter().enumerate() {
        assert!(
            job.rejected.is_none(),
            "weights {weights:?}: job {i} rejected"
        );
        assert!(
            job.completed_at.is_some(),
            "weights {weights:?}: job {i} never completed (starved?)"
        );
        let solo =
            analytic_output(&CountApp, &HashPartitioner, &spec(i % 3, 0.0, i, false)).unwrap();
        assert_eq!(
            job.output, solo,
            "weights {weights:?}: job {i} bytes drifted from its solo run"
        );
    }
    report
}

/// Asserts each tenant's share of clipped busy seconds tracks its
/// weight share within a relative tolerance.
fn assert_shares_track_weights(report: &ServiceSimReport<CountApp>, weights: [u32; 3], tol: f64) {
    let busy = clipped_busy_secs(report, weights.len());
    let total: f64 = busy.iter().sum();
    let weight_sum: u32 = weights.iter().sum();
    assert!(total > 0.0, "no busy time recorded at all");
    for (t, &w) in weights.iter().enumerate() {
        let share = busy[t] / total;
        let expect = w as f64 / weight_sum as f64;
        assert!(
            (share - expect).abs() <= tol * expect,
            "weights {weights:?}: tenant {t} got share {share:.3}, expected {expect:.3} \
             (±{:.0}%); busy={busy:?}",
            tol * 100.0
        );
    }
}

#[test]
fn equal_weights_share_equally() {
    let report = run_weight_config([1, 1, 1], 7);
    assert_shares_track_weights(&report, [1, 1, 1], 0.35);
}

#[test]
fn skewed_weights_share_proportionally() {
    let report = run_weight_config([1, 2, 4], 7);
    assert_shares_track_weights(&report, [1, 2, 4], 0.35);
}

#[test]
fn one_heavy_tenant_gets_its_multiple() {
    let report = run_weight_config([3, 1, 1], 7);
    assert_shares_track_weights(&report, [3, 1, 1], 0.35);
}

#[test]
fn outputs_are_identical_across_weight_configs() {
    // Fairness knobs reshape the *schedule*, never the *bytes*: the
    // same 24 jobs produce identical outputs under every weighting.
    let a = run_weight_config([1, 1, 1], 7);
    let b = run_weight_config([1, 2, 4], 7);
    let c = run_weight_config([3, 1, 1], 7);
    for i in 0..a.jobs.len() {
        assert_eq!(
            a.jobs[i].output, b.jobs[i].output,
            "job {i}: [1,1,1] vs [1,2,4]"
        );
        assert_eq!(
            a.jobs[i].output, c.jobs[i].output,
            "job {i}: [1,1,1] vs [3,1,1]"
        );
    }
}

#[test]
fn light_tenant_is_not_starved_by_heavy_one() {
    // Tenant 0 has weight 1 against a weight-1000 flood. Deficit
    // fairness still owes it ~1/1001 of the slots, which on this small
    // cluster means its two jobs run long before the flood drains.
    let params = small_cluster(2, 11)
        .tenant(0, TenantSpec::default().weight(1))
        .tenant(1, TenantSpec::default().weight(1000));
    let mut jobs: Vec<SimJobSpec<CountApp>> = vec![spec(0, 0.0, 0, false), spec(0, 0.0, 1, false)];
    jobs.extend((0..16).map(|i| spec(1, 0.0, 2 + i, false)));
    let report = ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[]).unwrap();
    assert!(report.failure.is_none());
    let light_last = report.jobs[..2]
        .iter()
        .map(|j| j.completed_at.expect("light tenant job must complete"))
        .fold(0.0_f64, f64::max);
    let heavy_last = report.jobs[2..]
        .iter()
        .map(|j| j.completed_at.expect("heavy tenant job must complete"))
        .fold(0.0_f64, f64::max);
    assert!(
        light_last < heavy_last,
        "light tenant finished at {light_last} only after the heavy flood's {heavy_last}"
    );
}

#[test]
fn priority_tenant_preempts_saturated_batch_work() {
    // Tenant 0 saturates the cluster with batch work at t=0; tenant 1
    // (strictly higher priority) submits one small job at t=10, when no
    // slot is free. Preemption must evict batch tasks to run it, and
    // the priority job must finish well inside the batch tail.
    let params = small_cluster(2, 13)
        .tenant(0, TenantSpec::default().priority(0))
        .tenant(1, TenantSpec::default().priority(1));
    let mut jobs: Vec<SimJobSpec<CountApp>> = (0..16).map(|i| spec(0, 0.0, i, false)).collect();
    jobs.push(spec(1, 10.0, 99, false));
    let report = ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[]).unwrap();
    assert!(report.failure.is_none());
    assert!(
        report.evictions > 0,
        "a saturated cluster plus a higher-priority arrival must evict"
    );
    let priority_done = report.jobs[16]
        .completed_at
        .expect("priority job must complete");
    let batch_last = report.jobs[..16]
        .iter()
        .map(|j| j.completed_at.expect("batch job must complete"))
        .fold(0.0_f64, f64::max);
    assert!(
        priority_done < batch_last,
        "priority job at {priority_done} did not beat the batch tail at {batch_last}"
    );
    // The evicted batch work still produces its exact bytes.
    for (i, job) in report.jobs.iter().enumerate().take(16) {
        let solo = analytic_output(&CountApp, &HashPartitioner, &spec(0, 0.0, i, false)).unwrap();
        assert_eq!(
            job.output, solo,
            "evicted-and-retried job {i} bytes drifted"
        );
    }
}

#[test]
fn same_seed_is_byte_and_schedule_deterministic() {
    // Chained and unchained jobs, staggered submissions, a mid-run node
    // kill and skewed weights: the same seed must reproduce the exact
    // schedule, trace and bytes.
    let mk = || {
        let params = small_cluster(3, 17)
            .tenant(1, TenantSpec::default().weight(3))
            .tenant(2, TenantSpec::default().priority(1));
        let jobs: Vec<SimJobSpec<CountApp>> = (0..9)
            .map(|i| spec(i % 3, i as f64, i, i % 4 == 0))
            .collect();
        ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[(25.0, 2)]).unwrap()
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.trace.len(), b.trace.len());
    for i in 0..a.jobs.len() {
        assert_eq!(
            a.jobs[i].completed_at, b.jobs[i].completed_at,
            "job {i} schedule"
        );
        assert_eq!(a.jobs[i].output, b.jobs[i].output, "job {i} bytes");
        if a.jobs[i].completed_at.is_some() {
            let solo = analytic_output(
                &CountApp,
                &HashPartitioner,
                &spec(i % 3, 0.0, i, i % 4 == 0),
            )
            .unwrap();
            assert_eq!(a.jobs[i].output, solo, "job {i} bytes vs solo");
        }
    }
}
