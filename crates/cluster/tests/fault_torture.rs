//! Fault-tolerance torture: multiple node failures at different phases
//! must never corrupt output — the paper claims the barrier-less model
//! "preserves the fault tolerance of the original MapReduce model" (§8).

use mr_apps::wordcount::WordCount;
use mr_cluster::{ClusterParams, CostModel, FnInput, SimExecutor};
use mr_core::{CombinerPolicy, Engine, HashPartitioner, JobConfig, SnapshotPolicy, StoreIndex};
use mr_workloads::TextWorkload;
use std::collections::BTreeMap;

fn cluster(seed: u64) -> ClusterParams {
    let mut p = ClusterParams::paper_testbed(seed);
    p.nodes = 6;
    p.map_slots = 2;
    p.reduce_slots = 2;
    p
}

fn workload(seed: u64) -> TextWorkload {
    TextWorkload {
        seed,
        vocab: 250,
        zipf_s: 1.0,
        lines_per_chunk: 40,
        words_per_line: 5,
    }
}

fn reference(chunks: u64, seed: u64) -> BTreeMap<String, u64> {
    let w = workload(seed);
    let mut m = BTreeMap::new();
    for c in 0..chunks {
        for (_, line) in w.chunk(c) {
            for word in line.split_whitespace() {
                *m.entry(word.to_string()).or_insert(0) += 1;
            }
        }
    }
    m
}

fn run_with(
    engine: Engine,
    seed: u64,
    chunks: u64,
    faults: &[(f64, usize)],
) -> (bool, Option<BTreeMap<String, u64>>, usize, usize) {
    run_with_combiner(engine, seed, chunks, faults, CombinerPolicy::Disabled)
}

fn run_with_combiner(
    engine: Engine,
    seed: u64,
    chunks: u64,
    faults: &[(f64, usize)],
    combiner: CombinerPolicy,
) -> (bool, Option<BTreeMap<String, u64>>, usize, usize) {
    run_full(engine, seed, chunks, faults, combiner, None)
}

fn run_full(
    engine: Engine,
    seed: u64,
    chunks: u64,
    faults: &[(f64, usize)],
    combiner: CombinerPolicy,
    store_index: Option<StoreIndex>,
) -> (bool, Option<BTreeMap<String, u64>>, usize, usize) {
    let w = workload(seed);
    let mut params = cluster(seed);
    params.combiner = combiner;
    params.store_index = store_index;
    let cfg = JobConfig::new(4).engine(engine).scratch_dir(
        std::env::temp_dir().join(format!("mr-fault-torture-{}-{seed}", std::process::id())),
    );
    let report = SimExecutor::new(params).run_with_faults(
        &WordCount,
        &FnInput(move |c| w.chunk(c)),
        chunks,
        &cfg,
        &CostModel::default_for_tests(),
        &HashPartitioner,
        faults,
    );
    let completed = report.outcome.is_completed();
    let output = report.output.map(|o| {
        o.into_sorted_output()
            .into_iter()
            .collect::<BTreeMap<_, _>>()
    });
    (
        completed,
        output,
        report.map_tasks_run,
        report.reduce_tasks_run,
    )
}

#[test]
fn two_failures_in_different_phases_are_survived() {
    let chunks = 14u64;
    let expect = reference(chunks, 21);
    for engine in [Engine::Barrier, Engine::barrierless()] {
        // One failure early in the map stage, one late (during reduces).
        let (completed, output, maps_run, reds_run) =
            run_with(engine.clone(), 21, chunks, &[(20.0, 0), (120.0, 3)]);
        assert!(completed, "two-failure run died under {engine:?}");
        assert_eq!(output.unwrap(), expect, "corrupt output under {engine:?}");
        assert!(
            maps_run as u64 > chunks || reds_run > 4,
            "no re-execution recorded"
        );
    }
}

#[test]
fn failure_during_every_phase_window() {
    // Sweep the failure instant across the whole job duration; output
    // must be exact every time.
    let chunks = 10u64;
    let expect = reference(chunks, 33);
    for fail_at in [5.0, 40.0, 80.0, 150.0, 250.0] {
        let (completed, output, _, _) =
            run_with(Engine::barrierless(), 33, chunks, &[(fail_at, 2)]);
        assert!(completed, "failure at {fail_at}s killed the job");
        assert_eq!(
            output.unwrap(),
            expect,
            "failure at {fail_at}s corrupted output"
        );
    }
}

#[test]
fn node_death_mid_shuffle_with_combining_enabled() {
    // The combiner changes what crosses the shuffle (combined partials,
    // deterministically re-generated on map re-run). Killing a node
    // while shuffle flows are in flight must still yield byte-exact
    // output. With 30 s map CPU, maps finish (and shuffle flows run)
    // from ~35 s on; sweep failure instants across that window, under
    // both engines.
    let chunks = 12u64;
    let expect = reference(chunks, 77);
    for engine in [Engine::Barrier, Engine::barrierless()] {
        for fail_at in [40.0, 70.0, 100.0] {
            let (completed, output, maps_run, reds_run) = run_with_combiner(
                engine.clone(),
                77,
                chunks,
                &[(fail_at, 1)],
                CombinerPolicy::enabled(),
            );
            assert!(
                completed,
                "mid-shuffle failure at {fail_at}s killed the combined job under {engine:?}"
            );
            assert_eq!(
                output.unwrap(),
                expect,
                "mid-shuffle failure at {fail_at}s corrupted combined output \
                 under {engine:?} (maps_run={maps_run}, reds_run={reds_run})"
            );
        }
    }
}

#[test]
fn node_death_under_hashed_index_is_byte_exact_and_matches_ordered() {
    // The tentpole's fault-recovery claim: with the hashed
    // (sort-at-drain) index active — including inside the map-side
    // combiner, whose drains feed the shuffle that re-run maps must
    // reproduce — killing a node mid-job yields byte-exact output
    // under either index (equality to the one reference also makes the
    // two recoveries equal to each other). Exercises the cluster-level
    // `ClusterParams::store_index` override for both settings.
    let chunks = 12u64;
    let expect = reference(chunks, 91);
    for engine in [Engine::Barrier, Engine::barrierless()] {
        for fail_at in [45.0, 110.0] {
            for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
                let (completed, output, _, _) = run_full(
                    engine.clone(),
                    91,
                    chunks,
                    &[(fail_at, 2)],
                    CombinerPolicy::enabled(),
                    Some(index),
                );
                assert!(
                    completed,
                    "failure at {fail_at}s killed the job under {engine:?} / {index:?}"
                );
                assert_eq!(
                    output.unwrap(),
                    expect,
                    "failure at {fail_at}s corrupted output under {engine:?} / {index:?}"
                );
            }
        }
    }
}

#[test]
fn node_death_between_snapshots_never_regresses_the_sequence() {
    // Snapshots tick every 30 s; nodes die *between* ticks. The published
    // snapshot stream of every reduce partition must keep strictly
    // increasing sequence numbers across the recovery re-run (a
    // restarted attempt resumes numbering above its predecessor), and
    // the final output must stay byte-exact.
    let chunks = 12u64;
    let expect = reference(chunks, 63);
    for engine in [Engine::Barrier, Engine::barrierless()] {
        // Ticks fire at 30 s and 60 s; both instants fall between them,
        // while reducers (started at t = 0) are mid-flight — at 45 s a
        // barrier-less reducer has already finished, so stay earlier.
        for fail_at in [35.0, 40.0] {
            let w = workload(63);
            let mut params = cluster(63);
            params.snapshots = Some(SnapshotPolicy::EverySecs { secs: 30.0 });
            let cfg = JobConfig::new(4).engine(engine.clone()).scratch_dir(
                std::env::temp_dir()
                    .join(format!("mr-fault-snap-{}-{fail_at}", std::process::id())),
            );
            let report = SimExecutor::new(params).run_with_faults(
                &WordCount,
                &FnInput(move |c| w.chunk(c)),
                chunks,
                &cfg,
                &CostModel::default_for_tests(),
                &HashPartitioner,
                &[(fail_at, 2)],
            );
            assert!(
                report.outcome.is_completed(),
                "failure at {fail_at}s killed the snapshotted job under {engine:?}"
            );
            assert!(report.snapshots_taken > 0, "no snapshots under {engine:?}");
            let reds_run = report.reduce_tasks_run;
            assert!(
                reds_run > 4,
                "scenario never restarted a reducer — nothing was tested"
            );
            let out = report.output.unwrap();
            let got: BTreeMap<String, u64> = out.partitions.iter().flatten().cloned().collect();
            assert_eq!(
                got, expect,
                "failure at {fail_at}s corrupted snapshotted output under {engine:?}"
            );
            for (r, snaps) in out.snapshots.iter().enumerate() {
                for pair in snaps.windows(2) {
                    assert!(
                        pair[0].seq < pair[1].seq,
                        "reducer {r} snapshot seq regressed across recovery \
                         ({} -> {}) under {engine:?} at {fail_at}s (reds_run={reds_run})",
                        pair[0].seq,
                        pair[1].seq
                    );
                }
            }
            // The stream survives restarts: a restarted reducer's first
            // post-recovery snapshot may *absorb fewer records* than its
            // predecessor's last (it starts over), but its sequence
            // number never reuses or regresses — verified above — and
            // under the barrier-less engine the final published estimate
            // equals the partition's final output.
            if engine != Engine::Barrier {
                for (r, snaps) in out.snapshots.iter().enumerate() {
                    let last = snaps.last().expect("at least the final snapshot");
                    assert_eq!(
                        last.estimate, out.partitions[r],
                        "reducer {r}'s last snapshot is not its final answer"
                    );
                }
            }
        }
    }
}

#[test]
fn losing_every_node_fails_loudly() {
    // Total cluster loss is unrecoverable and must be reported as a
    // failure — never as a completion with empty output.
    let (completed, output, _, _) = run_with(
        Engine::barrierless(),
        81,
        6,
        &[(5.0, 0), (6.0, 1), (7.0, 2), (8.0, 3), (9.0, 4), (10.0, 5)],
    );
    assert!(!completed, "dead cluster reported a completed job");
    assert!(output.is_none(), "dead cluster produced output");
}

#[test]
fn losing_half_the_cluster_still_completes() {
    let chunks = 8u64;
    let expect = reference(chunks, 55);
    let (completed, output, maps_run, _) = run_with(
        Engine::barrierless(),
        55,
        chunks,
        &[(15.0, 0), (30.0, 1), (45.0, 2)],
    );
    assert!(completed, "triple failure killed the job");
    assert_eq!(output.unwrap(), expect);
    assert!(maps_run as u64 >= chunks);
}

#[test]
fn node_death_on_either_side_of_a_speculative_race_is_byte_exact() {
    // Speculation doubles the attempts in flight; node failure must
    // compose with it from both directions. A clean speculative run on a
    // straggling cluster tells us when the first backup launches and
    // where it runs; we then kill, one run at a time, every node just
    // after that instant — which covers killing the *backup's* node
    // (scenario A), the *original's* node after the backup launched
    // (scenario B), and innocent bystanders. Every run must complete
    // with byte-exact output, and at least one faulted run must still
    // witness a backup winning its race.
    use mr_cluster::SpecEvent;
    use mr_core::SpeculationPolicy;
    let chunks = 14u64;
    let seed = 3u64;
    let expect = reference(chunks, seed);
    let run = |engine: Engine, faults: &[(f64, usize)]| {
        let w = workload(seed);
        let mut params = cluster(seed);
        params.hetero_sigma = 0.8;
        params.speculation = Some(SpeculationPolicy::enabled());
        let cfg = JobConfig::new(4).engine(engine).scratch_dir(
            std::env::temp_dir().join(format!("mr-spec-torture-{}", std::process::id())),
        );
        SimExecutor::new(params).run_with_faults(
            &WordCount,
            &FnInput(move |c| w.chunk(c)),
            chunks,
            &cfg,
            &CostModel::default_for_tests(),
            &HashPartitioner,
            faults,
        )
    };
    let mut faulted_win_seen = false;
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let clean = run(engine.clone(), &[]);
        assert!(clean.outcome.is_completed());
        let first_launch = clean
            .timeline
            .speculation
            .iter()
            .find(|m| m.event == SpecEvent::Launched)
            .unwrap_or_else(|| panic!("no backup launched on a 0.8-sigma cluster ({engine:?})"));
        let (kill_at, backup_node) = (first_launch.at.as_secs_f64() + 1.0, first_launch.node);
        for node in 0..6 {
            let report = run(engine.clone(), &[(kill_at, node)]);
            assert!(
                report.outcome.is_completed(),
                "killing node {node} at {kill_at:.1}s (backup on {backup_node}) died \
                 under {engine:?}: {:?}",
                report.outcome
            );
            if report.timeline.speculation_count(SpecEvent::Won) > 0 {
                faulted_win_seen = true;
            }
            let got: BTreeMap<String, u64> = report
                .output
                .unwrap()
                .into_sorted_output()
                .into_iter()
                .collect();
            assert_eq!(
                got, expect,
                "killing node {node} at {kill_at:.1}s corrupted speculative output \
                 under {engine:?}"
            );
        }
    }
    assert!(
        faulted_win_seen,
        "no faulted scenario witnessed a backup win — the race was never really exercised"
    );
}

#[test]
fn chain_edge_node_death_with_speculation_on_is_byte_exact() {
    // Speculation on a straggling cluster plus a node death while the
    // chain edge is live: stage-1 reducer backups race their originals
    // while stage-2 maps consume the winners' streams, and the kill
    // forces downstream restarts on top. Output must match the
    // fault-free, speculation-free chain byte for byte.
    use mr_apps::topk::TopK;
    use mr_cluster::{ChainSimExecutor, SpecEvent};
    use mr_core::{ChainSpec, HandoffMode, SpeculationPolicy};
    let chunks = 12u64;
    // Seed 8 puts stage-1 reducer 1 on a node ~2.3x the alive-node
    // median — a clear straggler for the speed trigger to back up.
    let seed = 8u64;
    let run = |spec: Option<SpeculationPolicy>, faults: &[(f64, usize)]| {
        let w = workload(seed);
        let mut params = cluster(seed);
        params.hetero_sigma = 0.8;
        params.speculation = spec;
        let chain_spec = ChainSpec::new(vec![
            JobConfig::new(4).engine(Engine::barrierless()).scratch_dir(
                std::env::temp_dir().join(format!("mr-chain-spec1-{}", std::process::id())),
            ),
            JobConfig::new(2).engine(Engine::barrierless()).scratch_dir(
                std::env::temp_dir().join(format!("mr-chain-spec2-{}", std::process::id())),
            ),
        ])
        .handoff(HandoffMode::Streaming);
        ChainSimExecutor::new(params).run_chain2_with_faults(
            &WordCount,
            &TopK::new(15),
            &FnInput(move |c| w.chunk(c)),
            chunks,
            &chain_spec,
            &CostModel::default_for_tests(),
            &HashPartitioner,
            &HashPartitioner,
            faults,
        )
    };
    let clean = run(None, &[]);
    assert!(clean.outcome.is_completed());
    let expect = clean.output.unwrap().into_sorted_output();
    assert!(!expect.is_empty());
    // Time the kills off a clean *speculative* run so they land while
    // the edge is live in the runs under test.
    let clean_spec = run(Some(SpeculationPolicy::enabled()), &[]);
    assert!(clean_spec.outcome.is_completed());
    assert_eq!(
        clean_spec.output.unwrap().into_sorted_output(),
        expect,
        "speculation alone changed the chain output"
    );
    let first = clean_spec
        .stage2_first_work
        .expect("chain handed something off")
        .as_secs_f64();
    let last = clean_spec
        .stage1_last_reduce_done
        .as_secs_f64()
        .max(first + 1.0);
    let launched = clean_spec.timeline1.speculation_count(SpecEvent::Launched)
        + clean_spec.timeline2.speculation_count(SpecEvent::Launched);
    assert!(launched > 0, "no backup launched across the clean chain");
    for fail_at in [first + 0.3 * (last - first), first + 0.7 * (last - first)] {
        for node in 0..4 {
            let report = run(Some(SpeculationPolicy::enabled()), &[(fail_at, node)]);
            assert!(
                report.outcome.is_completed(),
                "speculative chain died for kill of node {node} at {fail_at:.1}s: {:?}",
                report.outcome
            );
            let got = report.output.unwrap().into_sorted_output();
            assert_eq!(
                got, expect,
                "kill of node {node} at {fail_at:.1}s corrupted the speculative chain"
            );
        }
    }
}

#[test]
fn chain_node_death_mid_stage2_is_byte_exact_and_restarts_downstream_maps() {
    // The chain's fault claim: killing a node while stage 2 of a
    // wordcount → top-k chain is mid-flight must leave the final output
    // byte-exact under BOTH handoff modes, and under the streaming
    // handoff (where the intermediate stream is never materialized) at
    // least one downstream map task must actually restart because its
    // upstream reduce attempt died.
    use mr_apps::topk::TopK;
    use mr_cluster::ChainSimExecutor;
    use mr_core::{ChainSpec, HandoffMode};
    let chunks = 12u64;
    let seed = 29u64;
    let spec = |handoff| {
        ChainSpec::new(vec![
            JobConfig::new(4).engine(Engine::barrierless()).scratch_dir(
                std::env::temp_dir().join(format!("mr-chain-ft1-{}", std::process::id())),
            ),
            JobConfig::new(2).engine(Engine::barrierless()).scratch_dir(
                std::env::temp_dir().join(format!("mr-chain-ft2-{}", std::process::id())),
            ),
        ])
        .handoff(handoff)
    };
    let run = |handoff, faults: &[(f64, usize)]| {
        let w = workload(seed);
        ChainSimExecutor::new(cluster(seed)).run_chain2_with_faults(
            &WordCount,
            &TopK::new(15),
            &FnInput(move |c| w.chunk(c)),
            chunks,
            &spec(handoff),
            &CostModel::default_for_tests(),
            &HashPartitioner,
            &HashPartitioner,
            faults,
        )
    };
    // Fault-free reference (both modes must already agree).
    let clean = run(HandoffMode::Barrier, &[]);
    assert!(clean.outcome.is_completed());
    let expect = clean.output.unwrap().into_sorted_output();
    assert!(!expect.is_empty());
    let clean_stream = run(HandoffMode::Streaming, &[]);
    assert!(clean_stream.outcome.is_completed());
    // Pick fault instants inside the stage-1-reduce / stage-2 window the
    // clean run observed, so the kill lands while the chain edge (and
    // stage 2) is genuinely mid-flight.
    let first = clean_stream
        .stage2_first_work
        .expect("chain handed something off")
        .as_secs_f64();
    let last = clean_stream
        .stage1_last_reduce_done
        .as_secs_f64()
        .max(first + 1.0);
    let instants = [
        first + 0.25 * (last - first),
        first + 0.6 * (last - first),
        last + 5.0,
    ];
    let mut downstream_restart_seen = false;
    for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
        for &fail_at in &instants {
            for node in 0..4 {
                let report = run(handoff, &[(fail_at, node)]);
                assert!(
                    report.outcome.is_completed(),
                    "chain {handoff:?} died for kill of node {node} at {fail_at:.1}s: {:?}",
                    report.outcome
                );
                let restarts = report.downstream_map_restarts;
                let got = report.output.unwrap().into_sorted_output();
                assert_eq!(
                    got, expect,
                    "kill of node {node} at {fail_at:.1}s corrupted the {handoff:?} chain"
                );
                if handoff == HandoffMode::Streaming && restarts > 0 {
                    downstream_restart_seen = true;
                }
            }
        }
    }
    assert!(
        downstream_restart_seen,
        "no scenario restarted a downstream map task — the chain recovery path was never exercised"
    );
}

#[test]
fn contending_chained_and_unchained_jobs_survive_node_kills() {
    // The regression the unified SlotLedger placement fixed: chained
    // stage-2 tasks used to run *slotless*, so a chained job and an
    // unchained job contending for the same (tiny) slot pool could
    // wedge under recovery — the chained job's restarted stage-1
    // reducer needed a slot the unchained job held, while the unchained
    // job's reducer waited behind phantom stage-2 work that never
    // released anything. With every task drawing from the shared
    // ledger, the scenario must complete under a kill at any phase,
    // byte-exact for both jobs.
    use mr_cluster::{analytic_output, ServiceParams, ServiceSimExecutor, SimJobSpec};
    let seed = 5u64;
    let w = workload(seed);
    let splits_for = |base: u64, n: u64| -> Vec<Vec<(u64, String)>> {
        let w = w.clone();
        (0..n).map(|c| w.chunk(base + c)).collect()
    };
    let jobs = || -> Vec<SimJobSpec<WordCount>> {
        vec![
            // A chained two-stage pipeline and a plain job, different
            // tenants, fighting over 2 map + 2 reduce slots total.
            SimJobSpec {
                tenant: 0,
                submit_at_secs: 0.0,
                splits: splits_for(0, 4),
                reducers: 2,
                chained: true,
            },
            SimJobSpec {
                tenant: 1,
                submit_at_secs: 0.0,
                splits: splits_for(4, 4),
                reducers: 2,
                chained: false,
            },
        ]
    };
    let expect: Vec<_> = jobs()
        .iter()
        .map(|s| analytic_output(&WordCount, &HashPartitioner, s).unwrap())
        .collect();
    // Kill node 1 at instants spanning map work, the stage-1/stage-2
    // overlap, and the tail — the survivor node must absorb everything.
    for kill_at in [3.0, 10.0, 25.0, 60.0] {
        let mut params = ServiceParams::new(2);
        params.cluster = cluster(seed);
        params.cluster.nodes = 2;
        params.cluster.map_slots = 1;
        params.cluster.reduce_slots = 1;
        let report = ServiceSimExecutor::run(
            &WordCount,
            &HashPartitioner,
            &params,
            jobs(),
            &[(kill_at, 1)],
        )
        .unwrap();
        assert!(
            report.failure.is_none(),
            "kill at {kill_at}s wedged the contending pair: {:?}",
            report.failure
        );
        for (i, job) in report.jobs.iter().enumerate() {
            assert!(
                job.completed_at.is_some(),
                "kill at {kill_at}s: job {i} never completed (deadlock regression)"
            );
            assert_eq!(
                job.output, expect[i],
                "kill at {kill_at}s: job {i} output corrupted by recovery"
            );
        }
    }
}
