//! Behavioural tests of the simulated cluster: the qualitative claims the
//! paper's figures rest on must hold before any figure is regenerated.

use mr_apps::topk::TopK;
use mr_apps::wordcount::WordCount;
use mr_cluster::{ChainSimExecutor, ClusterParams, CostModel, FnInput, SimExecutor, SpanKind};
use mr_core::{ChainSpec, Engine, HandoffMode, HashPartitioner, JobConfig, MemoryPolicy};
use mr_workloads::TextWorkload;
use std::collections::BTreeMap;

fn small_cluster(seed: u64) -> ClusterParams {
    let mut p = ClusterParams::paper_testbed(seed);
    p.nodes = 4;
    p.map_slots = 2;
    p.reduce_slots = 2;
    p
}

fn wc_input(seed: u64) -> impl Fn(u64) -> Vec<(u64, String)> + Sync {
    let w = TextWorkload {
        seed,
        vocab: 400,
        zipf_s: 1.0,
        lines_per_chunk: 60,
        words_per_line: 6,
    };
    move |chunk| w.chunk(chunk)
}

fn costs() -> CostModel {
    CostModel::default_for_tests()
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mr-cluster-test-{tag}-{}", std::process::id()))
}

fn reference_counts(chunks: u64, seed: u64) -> BTreeMap<String, u64> {
    let gen = wc_input(seed);
    let mut m = BTreeMap::new();
    for c in 0..chunks {
        for (_, line) in gen(c) {
            for w in line.split_whitespace() {
                *m.entry(w.to_string()).or_insert(0) += 1;
            }
        }
    }
    m
}

#[test]
fn both_engines_complete_with_correct_output() {
    let chunks = 12;
    let expect = reference_counts(chunks, 5);
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let exec = SimExecutor::new(small_cluster(5));
        let cfg = JobConfig::new(6)
            .engine(engine.clone())
            .scratch_dir(scratch("correct"));
        let report = exec.run(
            &WordCount,
            &FnInput(wc_input(5)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
        );
        assert!(report.outcome.is_completed(), "engine {engine:?} failed");
        let got: BTreeMap<String, u64> = report
            .output
            .unwrap()
            .into_sorted_output()
            .into_iter()
            .collect();
        assert_eq!(got, expect, "engine {engine:?} output wrong");
    }
}

#[test]
fn barrierless_beats_barrier_on_aggregation() {
    let chunks = 24;
    let run = |engine: Engine| {
        let exec = SimExecutor::new(small_cluster(9));
        let cfg = JobConfig::new(8)
            .engine(engine)
            .scratch_dir(scratch("faster"));
        exec.run(
            &WordCount,
            &FnInput(wc_input(9)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
        )
    };
    let barrier = run(Engine::Barrier);
    let pipelined = run(Engine::barrierless());
    let tb = barrier.completion_secs();
    let tp = pipelined.completion_secs();
    assert!(
        tp < tb,
        "barrier-less ({tp:.1}s) should beat barrier ({tb:.1}s)"
    );
}

#[test]
fn barrier_reduce_waits_for_all_maps() {
    let exec = SimExecutor::new(small_cluster(3));
    let cfg = JobConfig::new(4).scratch_dir(scratch("wait"));
    let report = exec.run(
        &WordCount,
        &FnInput(wc_input(3)),
        16,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    // The defining property of the barrier (Figure 4a): no sort/reduce
    // span can start before the last map finished.
    let (sort_start, _) = report
        .timeline
        .kind_window(SpanKind::SortReduce)
        .expect("sort spans exist");
    assert!(
        sort_start >= report.last_map_done,
        "sort started {sort_start} before last map {}",
        report.last_map_done
    );
    // And mapper slack is non-trivial: shuffling continued past the first
    // map completion.
    assert!(report.mapper_slack_secs() > 0.0);
}

#[test]
fn barrierless_reduce_overlaps_the_map_stage() {
    let exec = SimExecutor::new(small_cluster(3));
    let cfg = JobConfig::new(4)
        .engine(Engine::barrierless())
        .scratch_dir(scratch("overlap"));
    let report = exec.run(
        &WordCount,
        &FnInput(wc_input(3)),
        16,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    // Figure 4b: the combined shuffle+reduce stage begins when the first
    // mappers complete, far before the last one.
    let (sr_start, _) = report
        .timeline
        .kind_window(SpanKind::ShuffleReduce)
        .expect("shuffle+reduce spans exist");
    assert!(
        sr_start < report.last_map_done,
        "pipelined reduce did not overlap maps"
    );
    // Heap samples were taken while maps were still running.
    assert!(report
        .timeline
        .heap
        .iter()
        .any(|h| h.at < report.last_map_done));
}

#[test]
fn inmemory_cap_kills_job_but_spill_survives() {
    let chunks = 16;
    let heap_cap = 8_000; // far below the working set at 2 reducers
    let exec = SimExecutor::new(small_cluster(7));
    let cfg = JobConfig::new(2)
        .engine(Engine::barrierless())
        .heap_cap(heap_cap)
        .scratch_dir(scratch("oom"));
    let report = exec.run(
        &WordCount,
        &FnInput(wc_input(7)),
        chunks,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    match &report.outcome {
        mr_cluster::Outcome::Failed { reason, .. } => {
            assert!(reason.contains("heap"), "unexpected reason: {reason}");
        }
        other => panic!("expected OOM failure, got {other:?}"),
    }
    assert!(report.output.is_none());

    // Same job, same cap mentality, spill-and-merge policy: completes.
    let exec = SimExecutor::new(small_cluster(7));
    let cfg = JobConfig::new(2)
        .engine(Engine::BarrierLess {
            memory: MemoryPolicy::SpillMerge {
                threshold_bytes: heap_cap / 2,
            },
        })
        .scratch_dir(scratch("oom-spill"));
    let report = exec.run(
        &WordCount,
        &FnInput(wc_input(7)),
        chunks,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    assert!(report.outcome.is_completed());
    let expect = reference_counts(chunks, 7);
    let got: BTreeMap<String, u64> = report
        .output
        .unwrap()
        .into_sorted_output()
        .into_iter()
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn node_failure_is_survived_with_correct_output() {
    let chunks = 16;
    let expect = reference_counts(chunks, 11);
    // Homogeneous, noise-free cluster: on a heterogeneous one, killing a
    // slow node can legitimately *speed up* the job, which would make
    // the "failures cost time" assertion below meaningless.
    let uniform_cluster = |seed: u64| {
        let mut p = small_cluster(seed);
        p.hetero_sigma = 0.0;
        p.task_noise_sigma = 0.0;
        p
    };
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let exec = SimExecutor::new(uniform_cluster(11));
        let cfg = JobConfig::new(4)
            .engine(engine.clone())
            .scratch_dir(scratch("fault"));
        let baseline = SimExecutor::new(uniform_cluster(11)).run(
            &WordCount,
            &FnInput(wc_input(11)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
        );
        // Kill node 1 mid-map-stage.
        let fault_at = baseline.first_map_done.as_secs_f64() + 1.0;
        let report = exec.run_with_faults(
            &WordCount,
            &FnInput(wc_input(11)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
            &[(fault_at, 1)],
        );
        assert!(
            report.outcome.is_completed(),
            "job with fault did not complete under {engine:?}"
        );
        // Re-execution happened.
        assert!(
            report.map_tasks_run > chunks as usize || report.reduce_tasks_run > 4,
            "no task was re-executed"
        );
        // And it cost time.
        assert!(
            report.completion_secs() >= baseline.completion_secs(),
            "losing a node made the uniform cluster faster under {engine:?}: \
             {} vs baseline {}",
            report.completion_secs(),
            baseline.completion_secs()
        );
        let got: BTreeMap<String, u64> = report
            .output
            .unwrap()
            .into_sorted_output()
            .into_iter()
            .collect();
        assert_eq!(got, expect, "fault corrupted output under {engine:?}");
    }
}

#[test]
fn same_seed_same_result() {
    let run = || {
        let exec = SimExecutor::new(small_cluster(13));
        let cfg = JobConfig::new(4)
            .engine(Engine::barrierless())
            .scratch_dir(scratch("det"));
        exec.run(
            &WordCount,
            &FnInput(wc_input(13)),
            10,
            &cfg,
            &costs(),
            &HashPartitioner,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.completion_secs(), b.completion_secs());
    assert_eq!(a.shuffle_bytes, b.shuffle_bytes);
    assert_eq!(
        a.output.unwrap().into_sorted_output(),
        b.output.unwrap().into_sorted_output()
    );
}

#[test]
fn reducer_waves_when_oversubscribed() {
    // More reducers than slots: a second wave must start after the first
    // wave releases slots — the Figure 8 mechanism at 70 reducers.
    let mut p = small_cluster(17);
    p.reduce_slots = 1; // 4 slots total
    let exec = SimExecutor::new(p);
    let cfg = JobConfig::new(6)
        .engine(Engine::barrierless())
        .scratch_dir(scratch("waves"));
    let report = exec.run(
        &WordCount,
        &FnInput(wc_input(17)),
        8,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    assert!(report.outcome.is_completed());
    let mut starts: Vec<_> = report
        .timeline
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::ShuffleReduce)
        .map(|s| s.start)
        .collect();
    starts.sort();
    assert_eq!(starts.len(), 6);
    // The 5th and 6th reducers start strictly later than the first four.
    assert!(starts[4] > starts[3], "no second wave observed: {starts:?}");
}

#[test]
fn combiner_cuts_shuffle_bytes_with_identical_output() {
    // Map-side combining must shrink the simulated shuffle volume (the
    // cost model's nominal bytes scale with the real record reduction)
    // and leave the job output byte-identical, under both engines.
    let chunks = 12;
    let expect = reference_counts(chunks, 5);
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let mut bytes = Vec::new();
        for combine in [false, true] {
            let mut params = small_cluster(5);
            if combine {
                params.combiner = mr_core::CombinerPolicy::enabled();
            }
            let exec = SimExecutor::new(params);
            let cfg = JobConfig::new(6)
                .engine(engine.clone())
                .scratch_dir(scratch("combine"));
            let report = exec.run(
                &WordCount,
                &FnInput(wc_input(5)),
                chunks,
                &cfg,
                &costs(),
                &HashPartitioner,
            );
            assert!(report.outcome.is_completed(), "engine {engine:?} failed");
            bytes.push(report.shuffle_bytes);
            let out = report.output.unwrap();
            if combine {
                let counters = &out.counters;
                assert!(
                    counters.get(mr_core::counters::names::COMBINE_OUTPUT_RECORDS)
                        < counters.get(mr_core::counters::names::COMBINE_INPUT_RECORDS),
                    "combiner did not aggregate under {engine:?}"
                );
            }
            let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect, "engine {engine:?} combine={combine} wrong");
        }
        assert!(
            bytes[1] < bytes[0],
            "combining did not reduce shuffle bytes under {engine:?}: {} -> {}",
            bytes[0],
            bytes[1]
        );
    }
}

#[test]
fn job_level_combiner_knob_works_without_cluster_knob() {
    // JobConfig::combiner alone (cluster knob left Disabled) must also
    // activate map-side combining in the simulator.
    let chunks = 8;
    let expect = reference_counts(chunks, 9);
    let exec = SimExecutor::new(small_cluster(9));
    let cfg = JobConfig::new(4)
        .engine(Engine::barrierless())
        .combiner(mr_core::CombinerPolicy::enabled())
        .scratch_dir(scratch("combine-job-knob"));
    let report = exec.run(
        &WordCount,
        &FnInput(wc_input(9)),
        chunks,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    assert!(report.outcome.is_completed());
    let out = report.output.unwrap();
    assert!(
        out.counters
            .get(mr_core::counters::names::COMBINE_INPUT_RECORDS)
            > 0
    );
    let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
    assert_eq!(got, expect);
}

#[test]
fn timed_snapshots_estimate_early_under_the_barrierless_engine_only() {
    use mr_core::SnapshotPolicy;
    // Enough chunks that maps run in waves: partial data reaches the
    // reducers long before the last map finishes, which is exactly what
    // snapshots make observable.
    let chunks = 24;
    let expect = reference_counts(chunks, 11);
    let policy = SnapshotPolicy::EverySecs { secs: 25.0 };
    let mut results = Vec::new();
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let exec = SimExecutor::new(small_cluster(11));
        let cfg = JobConfig::new(4)
            .engine(engine.clone())
            .snapshots(policy)
            .scratch_dir(scratch("snap-timed"));
        let report = exec.run(
            &WordCount,
            &FnInput(wc_input(11)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
        );
        assert!(report.outcome.is_completed(), "{engine:?} died");
        assert!(report.snapshots_taken > 0, "no snapshots under {engine:?}");
        assert_eq!(
            report.snapshots_taken,
            report.timeline.snapshots.len(),
            "report count diverged from timeline marks"
        );
        let last_map = report.last_map_done.as_secs_f64();
        let out = report.output.unwrap();
        // Snapshots never perturb the final answer.
        let got: BTreeMap<String, u64> = out.partitions.iter().flatten().cloned().collect();
        assert_eq!(got, expect, "snapshots corrupted {engine:?} output");
        // Per-reducer snapshot streams are monotone in seq and records.
        for snaps in &out.snapshots {
            for pair in snaps.windows(2) {
                assert!(pair[0].seq < pair[1].seq, "seq regressed");
                assert!(
                    pair[0].records_absorbed <= pair[1].records_absorbed,
                    "records regressed without a fault"
                );
            }
        }
        let early_records: u64 = out
            .snapshots
            .iter()
            .flatten()
            .filter(|s| s.at_secs < last_map)
            .map(|s| s.estimate.len() as u64)
            .sum();
        results.push((engine, early_records, got));
    }
    // The paper's point, stated as an assertion: before the last map
    // finishes, the barrier engine has published nothing while the
    // barrier-less engine already holds a usable estimate.
    assert_eq!(
        results[0].1, 0,
        "barrier engine estimated before the barrier"
    );
    assert!(
        results[1].1 > 0,
        "barrier-less engine produced no early estimate"
    );
    // And both engines' final outputs agree with each other.
    assert_eq!(results[0].2, results[1].2);
}

#[test]
fn record_driven_snapshots_are_deterministic_and_invisible_in_the_sim() {
    use mr_core::SnapshotPolicy;
    let chunks = 10;
    let run = |policy| {
        let exec = SimExecutor::new(small_cluster(13));
        let cfg = JobConfig::new(4)
            .engine(Engine::barrierless())
            .snapshots(policy)
            .scratch_dir(scratch("snap-records"));
        let report = exec.run(
            &WordCount,
            &FnInput(wc_input(13)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
        );
        assert!(report.outcome.is_completed());
        report
    };
    let mut plain = run(SnapshotPolicy::Disabled);
    let mut snapped = run(SnapshotPolicy::EveryRecords { records: 200 });
    assert_eq!(plain.snapshots_taken, 0);
    assert!(snapped.snapshots_taken > 0);
    let plain_out = plain.output.take().unwrap();
    let snapped_out = snapped.output.take().unwrap();
    assert_eq!(
        plain_out.partitions, snapped_out.partitions,
        "record-driven snapshots changed simulated output"
    );
    assert_eq!(
        snapped_out
            .counters
            .get(mr_core::counters::names::SNAPSHOT_COUNT),
        snapped_out.snapshot_count() as u64
    );
    // Observation is charged: the snapshotting run cannot be faster.
    assert!(snapped.completion_secs() >= plain.completion_secs());
    // Re-running the same snapshotted config reproduces the identical
    // snapshot stream (virtual time + record stream are deterministic).
    let again = run(SnapshotPolicy::EveryRecords { records: 200 });
    let again_out = again.output.unwrap();
    assert_eq!(snapped_out.snapshot_count(), again_out.snapshot_count());
    for (a, b) in snapped_out
        .snapshots_by_time()
        .iter()
        .zip(again_out.snapshots_by_time().iter())
    {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.records_absorbed, b.records_absorbed);
        assert_eq!(a.estimate, b.estimate);
    }
}

#[test]
fn cluster_snapshot_override_wins_and_invalid_config_fails_loudly() {
    use mr_core::SnapshotPolicy;
    let chunks = 6;
    // Cluster-level override turns snapshots on even though the job
    // itself asked for none.
    let mut params = small_cluster(17);
    params.snapshots = Some(SnapshotPolicy::EverySecs { secs: 30.0 });
    let cfg = JobConfig::new(3)
        .engine(Engine::barrierless())
        .scratch_dir(scratch("snap-override"));
    let report = SimExecutor::new(params).run(
        &WordCount,
        &FnInput(wc_input(17)),
        chunks,
        &cfg,
        &costs(),
        &HashPartitioner,
    );
    assert!(report.outcome.is_completed());
    assert!(report.snapshots_taken > 0, "override did not activate");

    // An invalid knob (zero shuffle batch) is a failed report up front,
    // not a panic deep in the event loop.
    let mut bad = JobConfig::new(3).engine(Engine::barrierless());
    bad.shuffle_batch_bytes = 0;
    let report = SimExecutor::new(small_cluster(17)).run(
        &WordCount,
        &FnInput(wc_input(17)),
        chunks,
        &bad,
        &costs(),
        &HashPartitioner,
    );
    assert!(!report.outcome.is_completed());
    match report.outcome {
        mr_cluster::Outcome::Failed { reason, .. } => {
            assert!(reason.contains("shuffle_batch_bytes"), "reason: {reason}")
        }
        _ => unreachable!(),
    }
    assert!(report.output.is_none());
}

// ---------------------------------------------------------- speculation

#[test]
fn speculation_never_fires_on_a_homogeneous_quiet_cluster() {
    use mr_core::SpeculationPolicy;
    // No node is slower than any other and tasks carry no noise, so no
    // attempt ever trails its peers: the detector must stay silent and
    // the run must be indistinguishable from a non-speculative one.
    let chunks = 16;
    let uniform = |seed: u64| {
        let mut p = small_cluster(seed);
        p.hetero_sigma = 0.0;
        p.task_noise_sigma = 0.0;
        p
    };
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let run = |spec: SpeculationPolicy| {
            let cfg = JobConfig::new(6)
                .engine(engine.clone())
                .speculation(spec)
                .scratch_dir(scratch("spec-quiet"));
            SimExecutor::new(uniform(19)).run(
                &WordCount,
                &FnInput(wc_input(19)),
                chunks,
                &cfg,
                &costs(),
                &HashPartitioner,
            )
        };
        let plain = run(SpeculationPolicy::Disabled);
        let spec = run(SpeculationPolicy::enabled());
        assert!(plain.outcome.is_completed() && spec.outcome.is_completed());
        assert_eq!(
            spec.timeline
                .speculation_count(mr_cluster::SpecEvent::Launched),
            0,
            "speculation fired on a homogeneous noise-free cluster under {engine:?}"
        );
        assert_eq!(
            spec.completion_secs(),
            plain.completion_secs(),
            "an idle speculation policy changed timing under {engine:?}"
        );
        assert_eq!(
            plain.output.unwrap().partitions,
            spec.output.unwrap().partitions,
            "an idle speculation policy changed output under {engine:?}"
        );
    }
}

#[test]
fn speculative_backup_wins_cut_straggler_time_with_identical_output() {
    use mr_cluster::SpecEvent;
    use mr_core::SpeculationPolicy;
    // A wide node-speed spread makes stragglers: backups must launch,
    // some must win, and exact output must not move by a byte. The
    // policy arrives as a cluster-level override — the job itself says
    // Disabled, and the override must win.
    let chunks = 24;
    let seed = 3;
    let hetero = |spec: Option<SpeculationPolicy>| {
        let mut p = small_cluster(seed);
        p.nodes = 6;
        p.hetero_sigma = 0.8;
        p.speculation = spec;
        p
    };
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let run = |spec: Option<SpeculationPolicy>| {
            let cfg = JobConfig::new(6)
                .engine(engine.clone())
                .speculation(SpeculationPolicy::Disabled)
                .scratch_dir(scratch("spec-win"));
            SimExecutor::new(hetero(spec)).run(
                &WordCount,
                &FnInput(wc_input(seed)),
                chunks,
                &cfg,
                &costs(),
                &HashPartitioner,
            )
        };
        let off = run(None);
        let on = run(Some(SpeculationPolicy::enabled()));
        assert!(off.outcome.is_completed() && on.outcome.is_completed());
        let launched = on.timeline.speculation_count(SpecEvent::Launched);
        let won = on.timeline.speculation_count(SpecEvent::Won);
        let cancelled = on.timeline.speculation_count(SpecEvent::Cancelled);
        assert!(
            launched > 0,
            "cluster-level speculation override did not activate under {engine:?}"
        );
        assert!(won > 0, "no backup attempt ever won under {engine:?}");
        // Every launched attempt resolves: one side of the race is
        // always cancelled, whether the backup won or lost.
        assert_eq!(launched, cancelled, "unresolved attempts under {engine:?}");
        assert!(
            on.completion_secs() < off.completion_secs(),
            "speculation did not help the straggling cluster under {engine:?}: \
             {:.1}s vs {:.1}s off",
            on.completion_secs(),
            off.completion_secs()
        );
        assert_eq!(
            off.output.unwrap().partitions,
            on.output.unwrap().partitions,
            "speculative re-execution changed output under {engine:?}"
        );
    }
}

#[test]
fn deadline_cuts_job_short_with_the_latest_snapshot_as_the_answer() {
    use mr_core::{DeadlinePolicy, SnapshotPolicy};
    let chunks = 24;
    let snap = SnapshotPolicy::EverySecs { secs: 20.0 };
    let run = |deadline: DeadlinePolicy| {
        let cfg = JobConfig::new(4)
            .engine(Engine::barrierless())
            .snapshots(snap)
            .deadline(deadline)
            .scratch_dir(scratch("deadline"));
        SimExecutor::new(small_cluster(11)).run(
            &WordCount,
            &FnInput(wc_input(11)),
            chunks,
            &cfg,
            &costs(),
            &HashPartitioner,
        )
    };
    let exact = run(DeadlinePolicy::Disabled);
    assert!(exact.outcome.is_completed());
    let at = exact.completion_secs() * 0.6;
    let cut = run(DeadlinePolicy::At { secs: at });
    assert!(
        cut.outcome.is_approximate(),
        "deadline at {at:.1}s did not cut a {:.1}s job short: {:?}",
        exact.completion_secs(),
        cut.outcome
    );
    // The answer is exactly the freshest published estimate, reducer by
    // reducer — nothing more recent, nothing stitched.
    let out = cut.output.expect("approximate runs carry output");
    assert_eq!(out.partitions.len(), 4);
    let mut estimated = 0;
    for (p, partition) in out.partitions.iter().enumerate() {
        let last: &[(String, u64)] = out.snapshots[p].last().map_or(&[], |s| &s.estimate);
        assert_eq!(
            partition.as_slice(),
            last,
            "partition {p} is not its last published snapshot"
        );
        estimated += partition.len();
    }
    assert!(estimated > 0, "approximate answer was empty");
    // Every published snapshot predates the deadline.
    for s in out.snapshots.iter().flatten() {
        assert!(s.at_secs <= at, "snapshot after the deadline");
    }
}

// --------------------------------------------------------------- chains

/// Runs the wordcount → top-k chain under the given handoff mode.
fn run_chain(
    seed: u64,
    chunks: u64,
    handoff: HandoffMode,
    engine: Engine,
) -> mr_cluster::ChainSimReport<TopK> {
    let spec = ChainSpec::new(vec![
        JobConfig::new(6)
            .engine(engine.clone())
            .scratch_dir(scratch("chain1")),
        JobConfig::new(2)
            .engine(engine)
            .scratch_dir(scratch("chain2")),
    ])
    .handoff(handoff);
    ChainSimExecutor::new(small_cluster(seed)).run_chain2(
        &WordCount,
        &TopK::new(12),
        &FnInput(wc_input(seed)),
        chunks,
        &spec,
        &costs(),
        &HashPartitioner,
        &HashPartitioner,
    )
}

#[test]
fn chained_jobs_complete_with_the_sequential_composition_output() {
    // Ground truth: run the two jobs sequentially to completion through
    // the single-job executor, feeding job 1's partitions to job 2 as
    // input chunks.
    let chunks = 12;
    let seed = 41;
    let cfg1 = JobConfig::new(6)
        .engine(Engine::barrierless())
        .scratch_dir(scratch("chain-seq1"));
    let r1 = SimExecutor::new(small_cluster(seed)).run(
        &WordCount,
        &FnInput(wc_input(seed)),
        chunks,
        &cfg1,
        &costs(),
        &HashPartitioner,
    );
    assert!(r1.outcome.is_completed());
    let parts = r1.output.unwrap().partitions;
    let n_parts = parts.len() as u64;
    let cfg2 = JobConfig::new(2)
        .engine(Engine::barrierless())
        .scratch_dir(scratch("chain-seq2"));
    let r2 = SimExecutor::new(small_cluster(seed)).run(
        &TopK::new(12),
        &FnInput(move |c| parts[c as usize].clone()),
        n_parts,
        &cfg2,
        &costs(),
        &HashPartitioner,
    );
    assert!(r2.outcome.is_completed());
    let expect = r2.output.unwrap().into_sorted_output();
    assert!(!expect.is_empty());

    for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let report = run_chain(seed, chunks, handoff, engine.clone());
            assert!(
                report.outcome.is_completed(),
                "chain {handoff:?}/{engine:?} failed: {:?}",
                report.outcome
            );
            let got = report.output.unwrap().into_sorted_output();
            assert_eq!(
                got, expect,
                "chain {handoff:?}/{engine:?} diverged from the sequential composition"
            );
        }
    }
}

#[test]
fn streaming_chain_overlaps_stages_and_the_barrier_chain_does_not() {
    let chunks = 16;
    let streaming = run_chain(43, chunks, HandoffMode::Streaming, Engine::barrierless());
    let barrier = run_chain(43, chunks, HandoffMode::Barrier, Engine::barrierless());
    assert!(streaming.outcome.is_completed());
    assert!(barrier.outcome.is_completed());

    // The paper-shaped claim: stage-2 map work starts while stage-1
    // reducers are still running — only without the inter-job barrier.
    assert!(
        streaming.overlapped(),
        "streaming chain never overlapped: first work {:?} vs last reduce {:?}",
        streaming.stage2_first_work,
        streaming.stage1_last_reduce_done
    );
    assert!(
        !barrier.overlapped(),
        "barrier chain overlapped stages, which a hard barrier forbids"
    );
    let barrier_gate = barrier.stage2_first_work.expect("stage 2 ran");
    assert!(
        barrier_gate >= barrier.stage1_complete,
        "barrier-mode stage 2 started before stage 1 completed"
    );

    // Removing the inter-job barrier (and the intermediate
    // materialization) must shorten the chain.
    assert!(
        streaming.completion_secs() < barrier.completion_secs(),
        "streaming chain ({:.1}s) not faster than barrier chain ({:.1}s)",
        streaming.completion_secs(),
        barrier.completion_secs()
    );

    // Cross-job edges were scheduled as timeline events, and the same
    // records crossed under both modes.
    assert!(!streaming.timeline1.handoffs.is_empty());
    assert!(!barrier.timeline1.handoffs.is_empty());
    assert_eq!(streaming.handoff_records, barrier.handoff_records);
    assert!(streaming.handoff_records > 0);
    // Streaming ships per-reducer increments; every upstream partition
    // contributed at least one edge.
    assert!(streaming.handoff_edges >= 6);
    // The output counters carry the chain handoff totals.
    let out = streaming.output.unwrap();
    assert_eq!(
        out.counters
            .get(mr_core::counters::names::CHAIN_HANDOFF_RECORDS),
        streaming.handoff_records
    );
}

#[test]
fn chain_rejects_invalid_specs_as_failed_reports() {
    let spec = ChainSpec::new(Vec::new());
    let report = ChainSimExecutor::new(small_cluster(7)).run_chain2(
        &WordCount,
        &TopK::new(4),
        &FnInput(wc_input(7)),
        4,
        &spec,
        &costs(),
        &HashPartitioner,
        &HashPartitioner,
    );
    assert!(!report.outcome.is_completed());
    assert!(report.output.is_none());

    let mut bad = JobConfig::new(2);
    bad.shuffle_batch_bytes = 0;
    let spec = ChainSpec::new(vec![JobConfig::new(2), bad]);
    let report = ChainSimExecutor::new(small_cluster(7)).run_chain2(
        &WordCount,
        &TopK::new(4),
        &FnInput(wc_input(7)),
        4,
        &spec,
        &costs(),
        &HashPartitioner,
        &HashPartitioner,
    );
    match report.outcome {
        mr_cluster::Outcome::Failed { reason, .. } => {
            assert!(reason.contains("shuffle_batch_bytes"), "reason: {reason}")
        }
        _ => panic!("invalid chain spec completed"),
    }
}
