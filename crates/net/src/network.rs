//! Flow-level network: per-node uplink/downlink processor sharing.

use mr_sim::{FlowId, PsResource, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Identifies a machine in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a transfer started on a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowHandle(pub u64);

/// Static description of the fabric.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of machines.
    pub nodes: usize,
    /// Raw NIC capacity, bytes per second (GbE = 125 MB/s).
    pub link_bytes_per_sec: f64,
    /// Derating factor for the access links; effective capacity is
    /// `link_bytes_per_sec / oversubscription`. `1.0` = non-blocking.
    pub oversubscription: f64,
}

impl NetworkConfig {
    /// A `nodes`-machine Gigabit fabric with no oversubscription.
    pub fn gigabit(nodes: usize) -> Self {
        NetworkConfig {
            nodes,
            link_bytes_per_sec: 125.0 * 1024.0 * 1024.0,
            oversubscription: 1.0,
        }
    }

    /// Effective per-direction NIC rate.
    pub fn effective_rate(&self) -> f64 {
        assert!(
            self.oversubscription >= 1.0,
            "oversubscription must be >= 1"
        );
        self.link_bytes_per_sec / self.oversubscription
    }
}

struct Nic {
    up: PsResource,
    down: PsResource,
}

struct FlowState<T> {
    src: NodeId,
    dst: NodeId,
    up_leg: FlowId,
    down_leg: FlowId,
    up_done: bool,
    down_done: bool,
    tag: T,
}

/// The cluster network. `T` is an opaque per-flow tag returned on
/// completion (e.g. "partition 3 of map task 17 for reducer 5").
pub struct Network<T> {
    cfg: NetworkConfig,
    nics: Vec<Nic>,
    flows: HashMap<FlowHandle, FlowState<T>>,
    /// Reverse maps from per-resource flow ids to global handles.
    up_index: Vec<HashMap<FlowId, FlowHandle>>,
    down_index: Vec<HashMap<FlowId, FlowHandle>>,
    /// Loopback (and otherwise already-finished) flows awaiting collection.
    ready: BTreeMap<SimTime, Vec<FlowHandle>>,
    next_handle: u64,
    completed_flows: u64,
    completed_bytes: u64,
}

impl<T> Network<T> {
    /// Builds the fabric described by `cfg`.
    pub fn new(cfg: NetworkConfig) -> Self {
        let rate = cfg.effective_rate();
        let nics = (0..cfg.nodes)
            .map(|_| Nic {
                up: PsResource::new(rate),
                down: PsResource::new(rate),
            })
            .collect();
        Network {
            up_index: (0..cfg.nodes).map(|_| HashMap::new()).collect(),
            down_index: (0..cfg.nodes).map(|_| HashMap::new()).collect(),
            cfg,
            nics,
            flows: HashMap::new(),
            ready: BTreeMap::new(),
            next_handle: 0,
            completed_flows: 0,
            completed_bytes: 0,
        }
    }

    /// Number of machines in the fabric.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Starts a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Same-node transfers complete immediately (they are served by the
    /// local disk, which the caller models separately).
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: T,
    ) -> FlowHandle {
        let handle = FlowHandle(self.next_handle);
        self.next_handle += 1;
        if src == dst || bytes == 0 {
            self.completed_flows += 1;
            self.completed_bytes += bytes;
            self.flows.insert(
                handle,
                FlowState {
                    src,
                    dst,
                    up_leg: FlowId(u64::MAX),
                    down_leg: FlowId(u64::MAX),
                    up_done: true,
                    down_done: true,
                    tag,
                },
            );
            self.ready.entry(now).or_default().push(handle);
            return handle;
        }
        let up_leg = self.nics[src.0 as usize].up.add_flow(now, bytes);
        let down_leg = self.nics[dst.0 as usize].down.add_flow(now, bytes);
        self.up_index[src.0 as usize].insert(up_leg, handle);
        self.down_index[dst.0 as usize].insert(down_leg, handle);
        self.flows.insert(
            handle,
            FlowState {
                src,
                dst,
                up_leg,
                down_leg,
                up_done: false,
                down_done: false,
                tag,
            },
        );
        self.completed_bytes += bytes; // counted on start; flows are not partial
        handle
    }

    /// The earliest instant at which any flow may complete, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut t = self.ready.keys().next().copied();
        for nic in &self.nics {
            for cand in [nic.up.next_completion(), nic.down.next_completion()] {
                t = match (t, cand) {
                    (None, c) => c,
                    (Some(a), None) => Some(a),
                    (Some(a), Some(b)) => Some(a.min(b)),
                };
            }
        }
        t
    }

    /// Advances all links to `t` and returns flows whose **both** legs
    /// finished, with their tags, in deterministic (handle) order.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<(FlowHandle, T)> {
        let mut finished: Vec<FlowHandle> = Vec::new();
        // Drain loopback completions due by t.
        let pending: Vec<SimTime> = self.ready.range(..=t).map(|(k, _)| *k).collect();
        for k in pending {
            finished.extend(self.ready.remove(&k).unwrap());
        }
        for node in 0..self.nics.len() {
            for leg in self.nics[node].up.advance_to(t) {
                if let Some(handle) = self.up_index[node].remove(&leg) {
                    let st = self.flows.get_mut(&handle).expect("up leg without flow");
                    st.up_done = true;
                    if st.down_done {
                        finished.push(handle);
                    }
                }
            }
            for leg in self.nics[node].down.advance_to(t) {
                if let Some(handle) = self.down_index[node].remove(&leg) {
                    let st = self.flows.get_mut(&handle).expect("down leg without flow");
                    st.down_done = true;
                    if st.up_done {
                        finished.push(handle);
                    }
                }
            }
        }
        finished.sort();
        finished.dedup();
        self.completed_flows += finished
            .iter()
            .filter(|h| {
                // Loopback flows were pre-counted at start.
                let st = &self.flows[h];
                st.up_leg != FlowId(u64::MAX)
            })
            .count() as u64;
        finished
            .into_iter()
            .map(|h| {
                let st = self.flows.remove(&h).expect("finished flow must exist");
                (h, st.tag)
            })
            .collect()
    }

    /// Cancels every in-flight flow that touches `node` (either endpoint),
    /// returning their tags. Used for fault injection.
    pub fn fail_node(&mut self, now: SimTime, node: NodeId) -> Vec<T> {
        let doomed: Vec<FlowHandle> = self
            .flows
            .iter()
            .filter(|(_, st)| (st.src == node || st.dst == node) && !(st.up_done && st.down_done))
            .map(|(h, _)| *h)
            .collect();
        let mut tags = Vec::new();
        let mut sorted = doomed;
        sorted.sort();
        for h in sorted {
            let st = self.flows.remove(&h).expect("doomed flow must exist");
            if !st.up_done {
                self.nics[st.src.0 as usize].up.cancel(now, st.up_leg);
                self.up_index[st.src.0 as usize].remove(&st.up_leg);
            }
            if !st.down_done {
                self.nics[st.dst.0 as usize].down.cancel(now, st.down_leg);
                self.down_index[st.dst.0 as usize].remove(&st.down_leg);
            }
            tags.push(st.tag);
        }
        tags
    }

    /// Cancels every in-flight flow whose tag satisfies `pred`,
    /// returning the cancelled tags. Same mechanics as [`fail_node`]
    /// (both legs released, indices cleaned up), but selected by tag
    /// instead of by endpoint — this is how a losing speculative attempt
    /// stops its transfers from consuming link capacity while the
    /// winning attempt's flows keep running on the same nodes.
    ///
    /// [`fail_node`]: Network::fail_node
    pub fn cancel_where(&mut self, now: SimTime, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut doomed: Vec<FlowHandle> = self
            .flows
            .iter()
            .filter(|(_, st)| !(st.up_done && st.down_done) && pred(&st.tag))
            .map(|(h, _)| *h)
            .collect();
        doomed.sort();
        let mut tags = Vec::new();
        for h in doomed {
            let st = self.flows.remove(&h).expect("doomed flow must exist");
            if !st.up_done {
                self.nics[st.src.0 as usize].up.cancel(now, st.up_leg);
                self.up_index[st.src.0 as usize].remove(&st.up_leg);
            }
            if !st.down_done {
                self.nics[st.dst.0 as usize].down.cancel(now, st.down_leg);
                self.down_index[st.dst.0 as usize].remove(&st.down_leg);
            }
            tags.push(st.tag);
        }
        tags
    }

    /// Number of flows still in flight.
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Lifetime completed flow count (including loopback).
    pub fn completed_flows(&self) -> u64 {
        self.completed_flows
    }

    /// Lifetime bytes accepted for transfer.
    pub fn accepted_bytes(&self) -> u64 {
        self.completed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn net(nodes: usize, rate_mb: f64) -> Network<&'static str> {
        Network::new(NetworkConfig {
            nodes,
            link_bytes_per_sec: rate_mb * MB as f64,
            oversubscription: 1.0,
        })
    }

    fn drain(net: &mut Network<&'static str>) -> Vec<(f64, &'static str)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            for (_, tag) in net.advance_to(t) {
                out.push((t.as_secs_f64(), tag));
            }
        }
        out
    }

    #[test]
    fn single_flow_takes_bytes_over_rate() {
        let mut n = net(2, 1.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 5 * MB, "a");
        let done = drain(&mut n);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 5.0).abs() < 1e-3, "{:?}", done);
    }

    #[test]
    fn loopback_completes_immediately() {
        let mut n = net(2, 1.0);
        n.start_flow(
            SimTime::from_secs(3),
            NodeId(1),
            NodeId(1),
            100 * MB,
            "local",
        );
        assert_eq!(n.next_event_time(), Some(SimTime::from_secs(3)));
        let done = n.advance_to(SimTime::from_secs(3));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, "local");
    }

    #[test]
    fn incast_shares_receiver_downlink() {
        // Four senders to one receiver: downlink is the bottleneck, each
        // flow gets rate/4, so all finish at 4x the solo time.
        let mut n = net(5, 1.0);
        for (i, tag) in ["a", "b", "c", "d"].iter().enumerate() {
            n.start_flow(SimTime::ZERO, NodeId(i as u32), NodeId(4), MB, tag);
        }
        let done = drain(&mut n);
        assert_eq!(done.len(), 4);
        for (t, _) in &done {
            assert!((t - 4.0).abs() < 1e-2, "expected ~4s, got {t}");
        }
    }

    #[test]
    fn fanout_shares_sender_uplink() {
        // One sender to four receivers: uplink is the bottleneck.
        let mut n = net(5, 1.0);
        for (i, tag) in ["a", "b", "c", "d"].iter().enumerate() {
            n.start_flow(SimTime::ZERO, NodeId(4), NodeId(i as u32), MB, tag);
        }
        let done = drain(&mut n);
        assert_eq!(done.len(), 4);
        for (t, _) in &done {
            assert!((t - 4.0).abs() < 1e-2, "expected ~4s, got {t}");
        }
    }

    #[test]
    fn disjoint_pairs_do_not_interfere() {
        let mut n = net(4, 1.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 2 * MB, "x");
        n.start_flow(SimTime::ZERO, NodeId(2), NodeId(3), 2 * MB, "y");
        let done = drain(&mut n);
        for (t, _) in &done {
            assert!((t - 2.0).abs() < 1e-2, "expected ~2s, got {t}");
        }
    }

    #[test]
    fn oversubscription_derates_links() {
        let mut n = Network::new(NetworkConfig {
            nodes: 2,
            link_bytes_per_sec: MB as f64,
            oversubscription: 2.0,
        });
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), MB, "slow");
        let mut finish = 0.0;
        while let Some(t) = n.next_event_time() {
            if !n.advance_to(t).is_empty() {
                finish = t.as_secs_f64();
            }
        }
        assert!((finish - 2.0).abs() < 1e-2, "expected ~2s, got {finish}");
    }

    #[test]
    fn fail_node_cancels_touching_flows() {
        let mut n = net(3, 1.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 100 * MB, "dies-src");
        n.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), 100 * MB, "dies-dst");
        n.start_flow(SimTime::ZERO, NodeId(2), NodeId(0), MB, "survives");
        let mut tags = n.fail_node(SimTime::from_secs_f64(0.5), NodeId(1));
        tags.sort();
        assert_eq!(tags, vec!["dies-dst", "dies-src"]);
        let done = drain(&mut n);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, "survives");
    }

    #[test]
    fn cancel_where_releases_capacity_for_survivors() {
        // Two equal flows share node 0's uplink; cancelling one halfway
        // lets the survivor finish on the full link, not the half link.
        let mut n = net(3, 1.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), MB, "loser");
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), MB, "winner");
        let tags = n.cancel_where(SimTime::from_secs(1), |t| *t == "loser");
        assert_eq!(tags, vec!["loser"]);
        let done = drain(&mut n);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, "winner");
        // Half the bytes moved at rate/2 in the first second; the rest
        // moves at full rate, so completion lands near 1.5s, not 2s.
        assert!((done[0].0 - 1.5).abs() < 1e-2, "{:?}", done);
    }

    #[test]
    fn zero_byte_flow_completes_at_start() {
        let mut n = net(2, 1.0);
        n.start_flow(SimTime::from_secs(1), NodeId(0), NodeId(1), 0, "empty");
        let done = n.advance_to(SimTime::from_secs(1));
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn accounting_counts_all_flows() {
        let mut n = net(3, 10.0);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), MB, "a");
        n.start_flow(SimTime::ZERO, NodeId(1), NodeId(1), MB, "lo");
        drain(&mut n);
        assert_eq!(n.completed_flows(), 2);
        assert_eq!(n.accepted_bytes(), 2 * MB);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "oversubscription must be >= 1")]
    fn undersubscription_rejected() {
        let _ = Network::<()>::new(NetworkConfig {
            nodes: 1,
            link_bytes_per_sec: 1.0,
            oversubscription: 0.5,
        });
    }
}
