//! `mr-net` — cluster network model on top of the `mr-sim` kernel.
//!
//! Models the paper's testbed fabric: every node hangs off a single Gigabit
//! switch, so the contention points are each node's NIC **uplink** and
//! **downlink**. Both directions are [`mr_sim::PsResource`]s (TCP fair
//! sharing on the access link); the switch core is assumed non-blocking,
//! with an optional *oversubscription* factor that derates every access
//! link — the paper explicitly calls out "oversubscribed links between
//! machines" as a source of mapper slack.
//!
//! A flow occupies its source uplink and destination downlink concurrently
//! and completes when **both** legs have carried all its bytes (a
//! store-and-forward-style conservative approximation; see DESIGN.md §6).
//! Same-node transfers never touch the network and complete immediately.

mod network;

pub use network::{FlowHandle, Network, NetworkConfig, NodeId};
