//! Property tests for the flow-level network: conservation, completion,
//! and bandwidth bounds under arbitrary traffic.

use mr_net::{Network, NetworkConfig, NodeId};
use mr_sim::SimTime;
use proptest::prelude::*;

fn drain(net: &mut Network<usize>) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    while let Some(t) = net.next_event_time() {
        for (_, tag) in net.advance_to(t) {
            out.push((t, tag));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every flow completes exactly once, never before its lower bound
    /// (bytes / link rate), and the network ends empty.
    #[test]
    fn all_flows_complete_with_sane_times(
        flows in prop::collection::vec(
            (0u32..8, 0u32..8, 1u64..10_000_000, 0u64..5_000_000),
            1..60
        )
    ) {
        let rate = 10_000_000.0; // 10 MB/s
        let mut net: Network<usize> = Network::new(NetworkConfig {
            nodes: 8,
            link_bytes_per_sec: rate,
            oversubscription: 1.0,
        });
        let mut sorted = flows.clone();
        sorted.sort_by_key(|f| f.3);
        let mut starts = Vec::new();
        let mut done = Vec::new();
        for (i, &(src, dst, bytes, at_us)) in sorted.iter().enumerate() {
            let at = SimTime::from_micros(at_us);
            // Drain (and record) completions up to the arrival instant.
            done.extend(net.advance_to(at).into_iter().map(|(_, tag)| (at, tag)));
            net.start_flow(at, NodeId(src), NodeId(dst), bytes, i);
            starts.push((at, src, dst, bytes));
        }
        done.extend(drain(&mut net));
        prop_assert_eq!(done.len(), sorted.len());
        prop_assert_eq!(net.in_flight(), 0);
        // Uniqueness of completions.
        let mut tags: Vec<usize> = done.iter().map(|(_, tag)| *tag).collect();
        tags.sort();
        tags.dedup();
        prop_assert_eq!(tags.len(), sorted.len());
        // Lower bound: a flow of B bytes cannot beat B/rate seconds
        // (loopback flows excepted — they bypass the fabric).
        for &(t, tag) in &done {
            let (at, src, dst, bytes) = starts[tag];
            if src != dst {
                let min_secs = bytes as f64 / rate;
                prop_assert!(
                    t.as_secs_f64() + 1e-4 >= at.as_secs_f64() + min_secs,
                    "flow {} finished impossibly fast", tag
                );
            } else {
                prop_assert!(t >= at);
            }
        }
    }

    /// Killing a node mid-traffic cancels exactly the flows touching it;
    /// the rest still complete.
    #[test]
    fn node_failure_cancels_only_touching_flows(
        flows in prop::collection::vec((0u32..6, 0u32..6, 1u64..1_000_000), 1..40),
        victim in 0u32..6,
    ) {
        let mut net: Network<usize> = Network::new(NetworkConfig {
            nodes: 6,
            link_bytes_per_sec: 1_000_000.0,
            oversubscription: 1.0,
        });
        for (i, &(src, dst, bytes)) in flows.iter().enumerate() {
            net.start_flow(SimTime::ZERO, NodeId(src), NodeId(dst), bytes, i);
        }
        // Collect loopback/zero-cost completions that happen at t=0.
        let immediate: Vec<usize> = net
            .advance_to(SimTime::ZERO)
            .into_iter()
            .map(|(_, tag)| tag)
            .collect();
        let cancelled = net.fail_node(SimTime::from_micros(1), NodeId(victim));
        for &tag in &cancelled {
            let (src, dst, _) = flows[tag];
            prop_assert!(
                src == victim || dst == victim,
                "cancelled flow {} does not touch victim", tag
            );
        }
        let done = drain(&mut net);
        // Everything is accounted for exactly once.
        let mut seen: Vec<usize> = immediate;
        seen.extend(cancelled.iter().copied());
        seen.extend(done.iter().map(|(_, tag)| *tag));
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), flows.len());
        // Survivors never touch the victim (unless they completed at t=0).
        for &(_, tag) in &done {
            let (src, dst, _) = flows[tag];
            prop_assert!(src != victim && dst != victim || src == dst);
        }
    }
}
