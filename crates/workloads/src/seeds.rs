//! Seed derivation.

/// SplitMix64 finalizer: mixes a seed and a stream index into an
/// independent-looking sub-seed. Used everywhere a generator needs a
/// per-chunk or per-record RNG without sharing state.
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix(1, 2), mix(1, 2));
    }

    #[test]
    fn streams_differ() {
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_ne!(mix(0, 1), mix(1, 1));
    }

    #[test]
    fn spreads_small_inputs() {
        // Low-entropy inputs should produce well-spread outputs: check that
        // the low byte takes many values across consecutive streams.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            seen.insert(mix(0, i) & 0xFF);
        }
        assert!(seen.len() > 150, "only {} distinct low bytes", seen.len());
    }
}
