//! Wikipedia-stand-in text: Zipf-distributed synthetic prose.

use crate::dist::Zipf;
use crate::seeds::mix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates lines of text whose word frequencies follow a Zipf law, the
/// statistical shape that drives WordCount and Distributed Grep in the
/// paper (3–16 GB Wikipedia dumps).
#[derive(Debug, Clone)]
pub struct TextWorkload {
    /// Master seed.
    pub seed: u64,
    /// Vocabulary size (distinct words; sets reducer key cardinality).
    pub vocab: usize,
    /// Zipf exponent (1.0 ≈ natural language).
    pub zipf_s: f64,
    /// Lines generated per chunk.
    pub lines_per_chunk: usize,
    /// Words per line.
    pub words_per_line: usize,
}

impl TextWorkload {
    /// Wikipedia-like defaults: 50 k-word vocabulary, Zipf(1.0), 200
    /// lines of 10 words per chunk (scaled-down record volume).
    pub fn wikipedia(seed: u64) -> Self {
        TextWorkload {
            seed,
            vocab: 50_000,
            zipf_s: 1.0,
            lines_per_chunk: 200,
            words_per_line: 10,
        }
    }

    /// The word spelled for rank `rank` (1-based).
    pub fn word(rank: usize) -> String {
        format!("w{rank:06}")
    }

    /// The lines of chunk `chunk`, keyed by global line number.
    pub fn chunk(&self, chunk: u64) -> Vec<(u64, String)> {
        let zipf = Zipf::new(self.vocab, self.zipf_s);
        let mut rng = StdRng::seed_from_u64(mix(self.seed, chunk));
        let base = chunk * self.lines_per_chunk as u64;
        (0..self.lines_per_chunk)
            .map(|i| {
                let words: Vec<String> = (0..self.words_per_line)
                    .map(|_| Self::word(zipf.sample(&mut rng)))
                    .collect();
                (base + i as u64, words.join(" "))
            })
            .collect()
    }

    /// Total records a job over `chunks` chunks will see.
    pub fn total_lines(&self, chunks: u64) -> u64 {
        chunks * self.lines_per_chunk as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_deterministic_and_distinct() {
        let w = TextWorkload::wikipedia(11);
        assert_eq!(w.chunk(0), w.chunk(0));
        assert_ne!(w.chunk(0), w.chunk(1));
        let w2 = TextWorkload::wikipedia(12);
        assert_ne!(w.chunk(0), w2.chunk(0));
    }

    #[test]
    fn line_keys_are_globally_unique() {
        let w = TextWorkload {
            seed: 3,
            vocab: 100,
            zipf_s: 1.0,
            lines_per_chunk: 50,
            words_per_line: 5,
        };
        let mut keys = Vec::new();
        for c in 0..4 {
            keys.extend(w.chunk(c).into_iter().map(|(k, _)| k));
        }
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let w = TextWorkload {
            seed: 7,
            vocab: 1000,
            zipf_s: 1.0,
            lines_per_chunk: 2000,
            words_per_line: 10,
        };
        let mut counts = std::collections::HashMap::new();
        for (_, line) in w.chunk(0) {
            for word in line.split_whitespace() {
                *counts.entry(word.to_string()).or_insert(0u32) += 1;
            }
        }
        let top = counts.get(&TextWorkload::word(1)).copied().unwrap_or(0);
        let median_rank = counts.get(&TextWorkload::word(500)).copied().unwrap_or(0);
        assert!(
            top > 50 * median_rank.max(1) / 10,
            "top {top}, mid {median_rank}"
        );
    }

    #[test]
    fn shape_matches_config() {
        let w = TextWorkload {
            seed: 1,
            vocab: 10,
            zipf_s: 1.0,
            lines_per_chunk: 7,
            words_per_line: 3,
        };
        let lines = w.chunk(2);
        assert_eq!(lines.len(), 7);
        assert!(lines.iter().all(|(_, l)| l.split_whitespace().count() == 3));
        assert_eq!(w.total_lines(10), 70);
    }
}
