//! Black-Scholes Monte-Carlo tasks.

use crate::seeds::mix;

/// One mapper's Monte-Carlo assignment: a seed and an iteration count.
/// The paper runs "a million iterations of the Black-Scholes algorithm
/// per mapper" (§6.1.6); the map function does the heavy floating-point
/// work and emits one `(value, value²)` pair per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloTask {
    /// RNG seed for this task's draws.
    pub seed: u64,
    /// Iterations to run.
    pub iterations: u64,
    /// Spot price of the underlying.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub volatility: f64,
    /// Time to maturity in years.
    pub maturity: f64,
}

/// Generates one Monte-Carlo task per chunk (= per mapper).
#[derive(Debug, Clone)]
pub struct PricingWorkload {
    /// Master seed.
    pub seed: u64,
    /// Iterations per mapper (scaled down from the paper's 10⁶ for
    /// in-simulator execution; the cost model charges for the nominal
    /// count).
    pub iterations_per_mapper: u64,
}

impl PricingWorkload {
    /// A workload with the given per-mapper iteration count.
    pub fn new(seed: u64, iterations_per_mapper: u64) -> Self {
        PricingWorkload {
            seed,
            iterations_per_mapper,
        }
    }

    /// The task for chunk `chunk`: `(task_id, task)`.
    pub fn chunk(&self, chunk: u64) -> Vec<(u64, MonteCarloTask)> {
        vec![(
            chunk,
            MonteCarloTask {
                seed: mix(self.seed, chunk),
                iterations: self.iterations_per_mapper,
                // A standard at-the-money European call.
                spot: 100.0,
                strike: 100.0,
                rate: 0.05,
                volatility: 0.2,
                maturity: 1.0,
            },
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_task_per_chunk_with_distinct_seeds() {
        let w = PricingWorkload::new(1, 1000);
        let a = w.chunk(0);
        let b = w.chunk(1);
        assert_eq!(a.len(), 1);
        assert_ne!(a[0].1.seed, b[0].1.seed);
        assert_eq!(a[0].1.iterations, 1000);
    }

    #[test]
    fn deterministic() {
        let w = PricingWorkload::new(9, 10);
        assert_eq!(w.chunk(4), w.chunk(4));
    }
}
