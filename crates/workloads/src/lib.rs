//! `mr-workloads` — seeded input generators for the paper's experiments.
//!
//! Each generator stands in for a dataset the paper used but we cannot
//! ship (Wikipedia dumps, Last.fm logs, …). What the experiments actually
//! depend on is record volume, key cardinality and key skew — all of which
//! these generators control explicitly and deterministically: every value
//! is a pure function of `(seed, chunk_index, position)`, so two runs (or
//! two engines) see byte-identical input.

pub mod dist;
pub mod ga;
pub mod knn;
pub mod lastfm;
pub mod pricing;
pub mod seeds;
pub mod sortgen;
pub mod text;

pub use dist::{Normal, Zipf};
pub use ga::GaWorkload;
pub use knn::KnnWorkload;
pub use lastfm::LastFmWorkload;
pub use pricing::PricingWorkload;
pub use seeds::mix;
pub use sortgen::SortWorkload;
pub use text::TextWorkload;
