//! Genetic-algorithm populations: 64-bit genomes, OneMax-style fitness.

use crate::seeds::mix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper scales GAs by giving each mapper a slice of the population
/// (§6.1.5, following Verma et al. 2009). Genomes here are 64-bit strings
/// and fitness is the popcount (OneMax) — the standard benchmark problem
/// in that line of work.
#[derive(Debug, Clone)]
pub struct GaWorkload {
    /// Master seed.
    pub seed: u64,
    /// Individuals per chunk (per mapper input slice).
    pub individuals_per_chunk: usize,
}

impl GaWorkload {
    /// A population slice generator.
    pub fn new(seed: u64, individuals_per_chunk: usize) -> Self {
        GaWorkload {
            seed,
            individuals_per_chunk,
        }
    }

    /// OneMax fitness of a genome.
    pub fn fitness(genome: u64) -> u32 {
        genome.count_ones()
    }

    /// The individuals of chunk `chunk`: `(individual_id, genome)`.
    pub fn chunk(&self, chunk: u64) -> Vec<(u64, u64)> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, chunk));
        let base = chunk * self.individuals_per_chunk as u64;
        (0..self.individuals_per_chunk)
            .map(|i| (base + i as u64, rng.gen::<u64>()))
            .collect()
    }

    /// Single-point crossover of two genomes at `point` (0..64).
    pub fn crossover(a: u64, b: u64, point: u32) -> (u64, u64) {
        let point = point % 64;
        if point == 0 {
            return (a, b);
        }
        let mask = (1u64 << point) - 1;
        ((a & mask) | (b & !mask), (b & mask) | (a & !mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitness_is_popcount() {
        assert_eq!(GaWorkload::fitness(0), 0);
        assert_eq!(GaWorkload::fitness(u64::MAX), 64);
        assert_eq!(GaWorkload::fitness(0b1011), 3);
    }

    #[test]
    fn crossover_preserves_bits() {
        let (a, b) = (0xFFFF_0000_FFFF_0000u64, 0x0000_FFFF_0000_FFFFu64);
        for point in [0u32, 1, 16, 32, 63] {
            let (c, d) = GaWorkload::crossover(a, b, point);
            // Total set bits conserved.
            assert_eq!(
                c.count_ones() + d.count_ones(),
                a.count_ones() + b.count_ones(),
                "point {point}"
            );
        }
    }

    #[test]
    fn chunks_deterministic_with_unique_ids() {
        let w = GaWorkload::new(2, 100);
        assert_eq!(w.chunk(0), w.chunk(0));
        let ids: Vec<u64> = w
            .chunk(0)
            .iter()
            .chain(w.chunk(1).iter())
            .map(|(id, _)| *id)
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
