//! k-Nearest-Neighbours data: a broadcast experimental set plus chunked
//! training values.

use crate::seeds::mix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Matches the paper's setup (§6.1.3): integer values in `0..1_000_000`;
/// the experimental values are distinct (they are the reducer keys), the
/// training values need not be.
#[derive(Debug, Clone)]
pub struct KnnWorkload {
    /// Master seed.
    pub seed: u64,
    /// Size of the (broadcast) experimental set — the key cardinality.
    pub experimental: usize,
    /// Training values per chunk.
    pub train_per_chunk: usize,
    /// Values are drawn from `0..value_range`.
    pub value_range: i64,
}

impl KnnWorkload {
    /// Paper-like defaults: values in 0..1e6.
    pub fn paper(seed: u64) -> Self {
        KnnWorkload {
            seed,
            experimental: 100,
            train_per_chunk: 400,
            value_range: 1_000_000,
        }
    }

    /// The experimental (query) set: `experimental` *distinct* values.
    /// Every mapper holds a copy, like a Hadoop side file.
    pub fn experimental_set(&self) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, u64::MAX));
        let mut set = std::collections::BTreeSet::new();
        while set.len() < self.experimental {
            set.insert(rng.gen_range(0..self.value_range));
        }
        set.into_iter().collect()
    }

    /// Training values of chunk `chunk`: `(record_id, train_value)`.
    pub fn chunk(&self, chunk: u64) -> Vec<(u64, i64)> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, chunk));
        let base = chunk * self.train_per_chunk as u64;
        (0..self.train_per_chunk)
            .map(|i| (base + i as u64, rng.gen_range(0..self.value_range)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experimental_values_are_distinct_and_stable() {
        let w = KnnWorkload::paper(3);
        let a = w.experimental_set();
        let b = w.experimental_set();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "experimental values must be unique");
    }

    #[test]
    fn training_values_in_range() {
        let w = KnnWorkload::paper(3);
        for (_, v) in w.chunk(7) {
            assert!((0..1_000_000).contains(&v));
        }
        assert_eq!(w.chunk(7).len(), 400);
    }

    #[test]
    fn chunks_differ() {
        let w = KnnWorkload::paper(3);
        assert_ne!(w.chunk(0), w.chunk(1));
    }
}
