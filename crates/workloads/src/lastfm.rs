//! Last.fm-style listen logs: `(userId, trackId)` events.

use crate::seeds::mix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates listen events "uniformly at random across 50 users and 5000
/// tracks", the exact setup of the paper's unique-listens experiment
/// (§6.1.4).
#[derive(Debug, Clone)]
pub struct LastFmWorkload {
    /// Master seed.
    pub seed: u64,
    /// Distinct users.
    pub users: u32,
    /// Distinct tracks (the reducer key cardinality).
    pub tracks: u32,
    /// Listen events per chunk.
    pub listens_per_chunk: usize,
}

impl LastFmWorkload {
    /// The paper's parameters: 50 users × 5000 tracks.
    pub fn paper(seed: u64) -> Self {
        LastFmWorkload {
            seed,
            users: 50,
            tracks: 5000,
            listens_per_chunk: 400,
        }
    }

    /// The events of chunk `chunk`: `(event_id, (user, track))`.
    #[allow(clippy::type_complexity)]
    pub fn chunk(&self, chunk: u64) -> Vec<(u64, (u32, u32))> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, chunk));
        let base = chunk * self.listens_per_chunk as u64;
        (0..self.listens_per_chunk)
            .map(|i| {
                (
                    base + i as u64,
                    (rng.gen_range(0..self.users), rng.gen_range(0..self.tracks)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_in_configured_ranges() {
        let w = LastFmWorkload::paper(5);
        for (_, (user, track)) in w.chunk(3) {
            assert!(user < 50);
            assert!(track < 5000);
        }
    }

    #[test]
    fn deterministic_per_seed_and_chunk() {
        let w = LastFmWorkload::paper(5);
        assert_eq!(w.chunk(1), w.chunk(1));
        assert_ne!(w.chunk(1), w.chunk(2));
    }

    #[test]
    fn users_and_tracks_are_roughly_uniform() {
        let w = LastFmWorkload {
            seed: 9,
            users: 10,
            tracks: 20,
            listens_per_chunk: 20_000,
        };
        let mut user_counts = vec![0u32; 10];
        for (_, (user, _)) in w.chunk(0) {
            user_counts[user as usize] += 1;
        }
        let min = *user_counts.iter().min().unwrap();
        let max = *user_counts.iter().max().unwrap();
        assert!(min > 1_700 && max < 2_300, "not uniform: {user_counts:?}");
    }
}
