//! Random records for the Sort benchmark.

use crate::seeds::mix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random 64-bit sort keys, TeraSort-style (§6.1.1). Duplicates
/// are possible (and the barrier-less sort exploits them by counting).
#[derive(Debug, Clone)]
pub struct SortWorkload {
    /// Master seed.
    pub seed: u64,
    /// Records per chunk.
    pub records_per_chunk: usize,
    /// Keys are drawn from `0..key_range` — smaller ranges mean more
    /// duplicates.
    pub key_range: u64,
}

impl SortWorkload {
    /// Uniform keys over the full u64 range.
    pub fn new(seed: u64, records_per_chunk: usize) -> Self {
        SortWorkload {
            seed,
            records_per_chunk,
            key_range: u64::MAX,
        }
    }

    /// The records of chunk `chunk`: `(record_id, sort_key)`.
    pub fn chunk(&self, chunk: u64) -> Vec<(u64, u64)> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, chunk));
        let base = chunk * self.records_per_chunk as u64;
        (0..self.records_per_chunk)
            .map(|i| (base + i as u64, rng.gen_range(0..self.key_range)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let w = SortWorkload::new(4, 128);
        assert_eq!(w.chunk(0), w.chunk(0));
        assert_eq!(w.chunk(0).len(), 128);
        assert_ne!(w.chunk(0), w.chunk(1));
    }

    #[test]
    fn narrow_key_range_produces_duplicates() {
        let w = SortWorkload {
            seed: 4,
            records_per_chunk: 1000,
            key_range: 10,
        };
        let mut keys: Vec<u64> = w.chunk(0).into_iter().map(|(_, k)| k).collect();
        assert!(keys.iter().all(|&k| k < 10));
        keys.sort();
        keys.dedup();
        assert!(keys.len() <= 10);
    }
}
