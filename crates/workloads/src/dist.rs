//! Sampling distributions implemented in-tree (no `rand_distr`
//! dependency; see DESIGN.md §3).

use rand::Rng;

/// Zipf-distributed ranks over `1..=n` with exponent `s`.
///
/// Natural-language word frequencies are famously Zipfian, which is what
/// makes WordCount's key distribution skewed: a handful of words dominate
/// the record stream while the tail supplies the key cardinality. Sampling
/// uses a precomputed CDF + binary search: O(n) setup, O(log n) per draw,
/// exact distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf(`s`) distribution over ranks `1..=n`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0, "std dev must be non-negative");
        Normal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one normal (second discarded for
        // statelessness; throughput is irrelevant here).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// A log-normal-style positive multiplier: `exp(Normal(0, sigma))`.
/// Used for per-node heterogeneity factors (slow vs fast machines).
pub fn hetero_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    Normal::new(0.0, sigma).sample(rng).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut rank1 = 0u32;
        let mut rank_tail = 0u32;
        for _ in 0..100_000 {
            let r = z.sample(&mut rng);
            if r == 1 {
                rank1 += 1;
            }
            if r > 500 {
                rank_tail += 1;
            }
        }
        // P(rank 1) ~ 1/H_1000 ~ 13%; tail half is far less likely per rank.
        assert!(rank1 > 10_000, "rank-1 count {rank1}");
        assert!(rank_tail < rank1, "tail {rank_tail} vs head {rank1}");
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn normal_moments_are_right() {
        let n = Normal::new(5.0, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..100_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn hetero_factors_are_positive_and_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let factors: Vec<f64> = (0..10_000).map(|_| hetero_factor(&mut rng, 0.3)).collect();
        assert!(factors.iter().all(|&f| f > 0.0));
        let gm = (factors.iter().map(|f| f.ln()).sum::<f64>() / factors.len() as f64).exp();
        assert!((gm - 1.0).abs() < 0.05, "geometric mean {gm}");
    }
}
