//! `mr-cache` — content-addressed shared result cache.
//!
//! Cross-job memoization for the barrier-less MapReduce stack: a
//! concurrent, byte-accounted, LRU-evicting store of computed artifacts
//! — partitioned map outputs and sealed job outputs — addressed by a
//! stable hash of their *content provenance* (input-chunk records, app
//! identity, and the effective `JobConfig` fields that shape the
//! artifact). The paper's §8 future-work note observes that memoization
//! "becomes feasible in the barrier-less model"; this crate is that
//! store, shared by every tenant of a `JobService`.
//!
//! The crate is deliberately free of `mr-core` types:
//!
//! * [`KeyBuilder`] / [`StableHash`] / [`CacheKey`] — deterministic
//!   128-bit content hashing (process-stable, unlike `std::hash`).
//! * [`ResultCache`] — the byte-budgeted LRU over type-erased
//!   `Arc<dyn Any + Send + Sync>` payloads; hits are zero-copy `Arc`
//!   clones, and an entry larger than the whole budget is a typed
//!   [`Oversize`] rejection rather than a silent no-op.
//!
//! Key derivation policy (which config fields participate, how splits
//! are fingerprinted) lives upstream in `mr-core`'s `local::cache`
//! module, next to the executors that consult the cache.

mod key;
mod store;

pub use key::{CacheKey, KeyBuilder, StableHash};
pub use store::{CacheStats, Eviction, Oversize, Payload, ResultCache, ENTRY_OVERHEAD};
