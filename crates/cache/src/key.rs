//! Stable content hashing for cache keys.
//!
//! Cache keys must be *stable*: the same logical inputs must produce the
//! same key across runs, threads, and processes. `std::hash::Hash` gives no
//! such guarantee (std's SipHash is randomly keyed per process), so keys
//! are derived through [`KeyBuilder`] — a streaming **SipHash-2-4-128**
//! with a fixed, documented key — and value types opt in through
//! [`StableHash`].
//!
//! # Collision and trust model
//!
//! Key equality is treated as proof of artifact identity: a hit is served
//! without re-verifying content. SipHash-2-4 mixes far better than the
//! FNV lanes this module started with — for *accidental* collisions the
//! 128-bit output makes aliasing negligible at any realistic artifact
//! count, and no structural collision shortcut is publicly known even
//! with the key public. It is still a PRF, not a collision-resistant
//! hash: the key below is a fixed constant (it must be, for keys to be
//! stable across processes), so a sufficiently determined adversary is
//! bounded only by the generic ~2^64 birthday cost. Tenants sharing one
//! cache (e.g. through `serve`) are therefore assumed *mutually trusted*
//! or at least non-adversarial; a deployment multiplexing hostile
//! tenants must give each its own cache.

/// The fixed SipHash key (`k0`, `k1`): ASCII `"mr-cache"` / `"key.v2.."`.
/// Public and deliberately boring — changing it invalidates every key,
/// so it is part of the on-disk/cross-process format.
const KEY0: u64 = u64::from_le_bytes(*b"mr-cache");
const KEY1: u64 = u64::from_le_bytes(*b"key.v2..");

/// A 128-bit content-derived cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// First output word of the SipHash-2-4-128 finalization.
    pub hi: u64,
    /// Second output word.
    pub lo: u64,
}

impl std::fmt::Debug for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CacheKey({:016x}{:016x})", self.hi, self.lo)
    }
}

/// Deterministic hasher producing a [`CacheKey`]: a streaming
/// SipHash-2-4 in its 128-bit output variant, keyed with the fixed
/// module constants.
///
/// Multi-byte writes are length-prefixed so concatenation cannot alias
/// (`"ab" + "c"` hashes differently from `"a" + "bc"`).
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Bytes absorbed but not yet a full 8-byte block.
    tail: [u8; 8],
    tail_len: usize,
    /// Total bytes absorbed (mod 256 enters the final block per spec).
    len: u64,
}

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13) ^ *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16) ^ *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21) ^ *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17) ^ *v2;
    *v2 = v2.rotate_left(32);
}

impl KeyBuilder {
    /// A fresh builder at the SipHash initial state (128-bit variant:
    /// the standard constants with `v1 ^= 0xee`).
    pub fn new() -> Self {
        KeyBuilder {
            v0: KEY0 ^ 0x736f_6d65_7073_6575,
            v1: KEY1 ^ 0x646f_7261_6e64_6f6d ^ 0xee,
            v2: KEY0 ^ 0x6c79_6765_6e65_7261,
            v3: KEY1 ^ 0x7465_6462_7974_6573,
            tail: [0; 8],
            tail_len: 0,
            len: 0,
        }
    }

    /// Compresses one 8-byte little-endian block (2 rounds = SipHash-**2**-4).
    #[inline]
    fn block(&mut self, m: u64) {
        self.v3 ^= m;
        sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        self.v0 ^= m;
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.tail[self.tail_len] = b;
        self.tail_len += 1;
        self.len = self.len.wrapping_add(1);
        if self.tail_len == 8 {
            let m = u64::from_le_bytes(self.tail);
            self.tail_len = 0;
            self.block(m);
        }
    }

    /// Absorbs one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Absorbs a byte slice, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Absorbs a string's UTF-8 bytes, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Finishes the accumulation into a key (the builder itself is left
    /// untouched, so more content may still be absorbed afterwards).
    pub fn finish(&self) -> CacheKey {
        let mut s = self.clone();
        // Final block: remaining tail bytes, length byte on top.
        let mut last = [0u8; 8];
        last[..s.tail_len].copy_from_slice(&s.tail[..s.tail_len]);
        last[7] = s.len as u8;
        s.block(u64::from_le_bytes(last));
        // 128-bit finalization: 4 rounds per output word, per spec.
        s.v2 ^= 0xee;
        for _ in 0..4 {
            sip_round(&mut s.v0, &mut s.v1, &mut s.v2, &mut s.v3);
        }
        let hi = s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
        s.v1 ^= 0xdd;
        for _ in 0..4 {
            sip_round(&mut s.v0, &mut s.v1, &mut s.v2, &mut s.v3);
        }
        let lo = s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
        CacheKey { hi, lo }
    }
}

impl Default for KeyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
impl KeyBuilder {
    /// Test hook: a builder under an arbitrary key, for checking the
    /// core permutation against the published SipHash-2-4-128 vectors.
    fn with_key(k0: u64, k1: u64) -> Self {
        let mut b = KeyBuilder::new();
        b.v0 = k0 ^ 0x736f_6d65_7073_6575;
        b.v1 = k1 ^ 0x646f_7261_6e64_6f6d ^ 0xee;
        b.v2 = k0 ^ 0x6c79_6765_6e65_7261;
        b.v3 = k1 ^ 0x7465_6462_7974_6573;
        b
    }

    /// Test hook: absorbs raw bytes with no length prefix.
    fn absorb_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }
}

/// Types whose content can be absorbed into a [`KeyBuilder`]
/// deterministically across processes.
///
/// Mirrors the menu of `SizeEstimate` in `mr-core`: the std types jobs
/// actually move through map/reduce. Floats hash their IEEE-754 bit
/// patterns, so `-0.0` and `0.0` are *distinct* content (they print
/// differently, and cached output must be byte-identical).
pub trait StableHash {
    /// Absorbs `self` into the builder.
    fn stable_hash(&self, k: &mut KeyBuilder);
}

macro_rules! stable_hash_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, k: &mut KeyBuilder) {
                k.write_u64(*self as u64);
            }
        }
    )*};
}

stable_hash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for bool {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(u64::from(*self));
    }
}

impl StableHash for char {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(u64::from(*self));
    }
}

impl StableHash for () {
    fn stable_hash(&self, _k: &mut KeyBuilder) {}
}

impl StableHash for f32 {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(u64::from(self.to_bits()));
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(self.to_bits());
    }
}

impl StableHash for str {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_str(self);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        (**self).stable_hash(k);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        match self {
            None => k.write_u64(0),
            Some(v) => {
                k.write_u64(1);
                v.stable_hash(k);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(self.len() as u64);
        for v in self {
            v.stable_hash(k);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        self.as_slice().stable_hash(k);
    }
}

macro_rules! stable_hash_tuple {
    ($($name:ident),+) => {
        impl<$($name: StableHash),+> StableHash for ($($name,)+) {
            #[allow(non_snake_case)]
            fn stable_hash(&self, k: &mut KeyBuilder) {
                let ($(ref $name,)+) = *self;
                $($name.stable_hash(k);)+
            }
        }
    };
}

stable_hash_tuple!(A);
stable_hash_tuple!(A, B);
stable_hash_tuple!(A, B, C);
stable_hash_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(f: impl Fn(&mut KeyBuilder)) -> CacheKey {
        let mut k = KeyBuilder::new();
        f(&mut k);
        k.finish()
    }

    #[test]
    fn identical_input_identical_key() {
        let a = key_of(|k| ("word".to_string(), 3u64).stable_hash(k));
        let b = key_of(|k| ("word".to_string(), 3u64).stable_hash(k));
        assert_eq!(a, b);
    }

    #[test]
    fn different_input_different_key() {
        let a = key_of(|k| "word".stable_hash(k));
        let b = key_of(|k| "word!".stable_hash(k));
        assert_ne!(a, b);
        let c = key_of(|k| 1u64.stable_hash(k));
        let d = key_of(|k| 2u64.stable_hash(k));
        assert_ne!(c, d);
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let a = key_of(|k| {
            k.write_str("ab");
            k.write_str("c");
        });
        let b = key_of(|k| {
            k.write_str("a");
            k.write_str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn option_and_vec_are_structure_sensitive() {
        let some = key_of(|k| Some(0u64).stable_hash(k));
        let none = key_of(|k| Option::<u64>::None.stable_hash(k));
        assert_ne!(some, none);
        let split = key_of(|k| vec![vec![1u64], vec![2u64]].stable_hash(k));
        let flat = key_of(|k| vec![vec![1u64, 2u64]].stable_hash(k));
        assert_ne!(split, flat);
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let pos = key_of(|k| 0.0f64.stable_hash(k));
        let neg = key_of(|k| (-0.0f64).stable_hash(k));
        assert_ne!(pos, neg);
    }

    #[test]
    fn output_words_are_independent() {
        // A 64-bit collision in one output word should not imply the
        // other; at minimum the two must differ for ordinary input.
        let k = key_of(|k| "anything".stable_hash(k));
        assert_ne!(k.hi, k.lo);
    }

    #[test]
    fn matches_published_siphash128_vectors() {
        // SipHash-2-4-128 reference vectors (veorq/SipHash
        // `vectors_128`): key = 00 01 .. 0f, input = the first `len`
        // bytes of 00 01 02 ..; output read as two LE words.
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let expect: [(usize, [u8; 16]); 4] = [
            (
                0,
                [
                    0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7,
                    0x55, 0x02, 0x93,
                ],
            ),
            (
                1,
                [
                    0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b,
                    0x22, 0xfc, 0x45,
                ],
            ),
            (
                8,
                [
                    0x3b, 0x62, 0xa9, 0xba, 0x62, 0x58, 0xf5, 0x61, 0x0f, 0x83, 0xe2, 0x64, 0xf3,
                    0x14, 0x97, 0xb4,
                ],
            ),
            (
                15,
                [
                    0x54, 0x93, 0xe9, 0x99, 0x33, 0xb0, 0xa8, 0x11, 0x7e, 0x08, 0xec, 0x0f, 0x97,
                    0xcf, 0xc3, 0xd9,
                ],
            ),
        ];
        for (len, out) in expect {
            let mut b = KeyBuilder::with_key(k0, k1);
            let input: Vec<u8> = (0..len as u8).collect();
            b.absorb_raw(&input);
            let key = b.finish();
            assert_eq!(key.hi, u64::from_le_bytes(out[..8].try_into().unwrap()));
            assert_eq!(key.lo, u64::from_le_bytes(out[8..].try_into().unwrap()));
        }
    }

    #[test]
    fn keys_are_stable_across_builds() {
        // Keys are a persistent format: this golden value may only
        // change with a deliberate, documented key-format bump.
        let k = key_of(|k| {
            k.write_str("mr.split.v1");
            k.write_u64(42);
        });
        assert_eq!(
            format!("{k:?}"),
            format!("CacheKey({:016x}{:016x})", k.hi, k.lo),
            "debug format is the canonical rendering"
        );
        let rendered = format!("{k:?}");
        assert_eq!(rendered, GOLDEN, "key derivation changed");
    }

    /// Filled in from the first run of `keys_are_stable_across_builds`;
    /// pins cross-build stability of the whole pipeline (key constants,
    /// length prefixes, finalization).
    const GOLDEN: &str = "CacheKey(5fd952cc8f49849dec0ab899f8a207b5)";
}
