//! Stable content hashing for cache keys.
//!
//! Cache keys must be *stable*: the same logical inputs must produce the
//! same key across runs, threads, and processes. `std::hash::Hash` gives no
//! such guarantee (SipHash is randomly keyed per process), so keys are
//! derived through [`KeyBuilder`], a deterministic double-lane FNV-1a
//! accumulator, and value types opt in through [`StableHash`].
//!
//! Two independent 64-bit lanes give a 128-bit [`CacheKey`]; a collision
//! requires both lanes to collide simultaneously, which for the artifact
//! counts involved here (thousands, not billions) is negligible.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset perturbation for the second lane so the lanes stay independent.
const LANE2_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

/// A 128-bit content-derived cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// First FNV-1a lane.
    pub hi: u64,
    /// Second (tweaked-offset) FNV-1a lane.
    pub lo: u64,
}

impl std::fmt::Debug for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CacheKey({:016x}{:016x})", self.hi, self.lo)
    }
}

/// Deterministic hasher producing a [`CacheKey`].
///
/// Multi-byte writes are length-prefixed so concatenation cannot alias
/// (`"ab" + "c"` hashes differently from `"a" + "bc"`).
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    hi: u64,
    lo: u64,
}

impl KeyBuilder {
    /// A fresh builder at the FNV offset basis.
    pub fn new() -> Self {
        KeyBuilder {
            hi: FNV_OFFSET,
            lo: FNV_OFFSET ^ LANE2_TWEAK,
        }
    }

    fn byte(&mut self, b: u8) {
        self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Absorbs a byte slice, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Absorbs a string's UTF-8 bytes, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Finishes the accumulation into a key.
    pub fn finish(&self) -> CacheKey {
        CacheKey {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

impl Default for KeyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Types whose content can be absorbed into a [`KeyBuilder`]
/// deterministically across processes.
///
/// Mirrors the menu of `SizeEstimate` in `mr-core`: the std types jobs
/// actually move through map/reduce. Floats hash their IEEE-754 bit
/// patterns, so `-0.0` and `0.0` are *distinct* content (they print
/// differently, and cached output must be byte-identical).
pub trait StableHash {
    /// Absorbs `self` into the builder.
    fn stable_hash(&self, k: &mut KeyBuilder);
}

macro_rules! stable_hash_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, k: &mut KeyBuilder) {
                k.write_u64(*self as u64);
            }
        }
    )*};
}

stable_hash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for bool {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(u64::from(*self));
    }
}

impl StableHash for char {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(u64::from(*self));
    }
}

impl StableHash for () {
    fn stable_hash(&self, _k: &mut KeyBuilder) {}
}

impl StableHash for f32 {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(u64::from(self.to_bits()));
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(self.to_bits());
    }
}

impl StableHash for str {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_str(self);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        (**self).stable_hash(k);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        match self {
            None => k.write_u64(0),
            Some(v) => {
                k.write_u64(1);
                v.stable_hash(k);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        k.write_u64(self.len() as u64);
        for v in self {
            v.stable_hash(k);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, k: &mut KeyBuilder) {
        self.as_slice().stable_hash(k);
    }
}

macro_rules! stable_hash_tuple {
    ($($name:ident),+) => {
        impl<$($name: StableHash),+> StableHash for ($($name,)+) {
            #[allow(non_snake_case)]
            fn stable_hash(&self, k: &mut KeyBuilder) {
                let ($(ref $name,)+) = *self;
                $($name.stable_hash(k);)+
            }
        }
    };
}

stable_hash_tuple!(A);
stable_hash_tuple!(A, B);
stable_hash_tuple!(A, B, C);
stable_hash_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(f: impl Fn(&mut KeyBuilder)) -> CacheKey {
        let mut k = KeyBuilder::new();
        f(&mut k);
        k.finish()
    }

    #[test]
    fn identical_input_identical_key() {
        let a = key_of(|k| ("word".to_string(), 3u64).stable_hash(k));
        let b = key_of(|k| ("word".to_string(), 3u64).stable_hash(k));
        assert_eq!(a, b);
    }

    #[test]
    fn different_input_different_key() {
        let a = key_of(|k| "word".stable_hash(k));
        let b = key_of(|k| "word!".stable_hash(k));
        assert_ne!(a, b);
        let c = key_of(|k| 1u64.stable_hash(k));
        let d = key_of(|k| 2u64.stable_hash(k));
        assert_ne!(c, d);
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let a = key_of(|k| {
            k.write_str("ab");
            k.write_str("c");
        });
        let b = key_of(|k| {
            k.write_str("a");
            k.write_str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn option_and_vec_are_structure_sensitive() {
        let some = key_of(|k| Some(0u64).stable_hash(k));
        let none = key_of(|k| Option::<u64>::None.stable_hash(k));
        assert_ne!(some, none);
        let split = key_of(|k| vec![vec![1u64], vec![2u64]].stable_hash(k));
        let flat = key_of(|k| vec![vec![1u64, 2u64]].stable_hash(k));
        assert_ne!(split, flat);
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let pos = key_of(|k| 0.0f64.stable_hash(k));
        let neg = key_of(|k| (-0.0f64).stable_hash(k));
        assert_ne!(pos, neg);
    }

    #[test]
    fn lanes_are_independent() {
        // A 64-bit collision in one lane should not imply the other; at
        // minimum the two lanes must not be equal for ordinary input.
        let k = key_of(|k| "anything".stable_hash(k));
        assert_ne!(k.hi, k.lo);
    }
}
