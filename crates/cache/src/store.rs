//! The shared result store: a concurrent, byte-accounted LRU over
//! type-erased `Arc` payloads.
//!
//! The store is deliberately ignorant of what it holds: payloads are
//! `Arc<dyn Any + Send + Sync>` and the *caller* supplies the byte charge
//! (computed from `SizeEstimate` upstream). That erasure is what lets one
//! cache serve every application type, both artifact classes (partitioned
//! map outputs and sealed job outputs), and all tenants of a `JobService`
//! at once. A hit clones the `Arc` — zero-copy — so eviction never
//! invalidates a handed-out artifact; it only drops the cache's own
//! reference.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::key::CacheKey;

/// Type-erased cached artifact.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// Fixed per-entry bookkeeping charge (slab node + map entry, rounded).
pub const ENTRY_OVERHEAD: u64 = 64;

const NIL: usize = usize::MAX;

/// Typed rejection for an entry whose charge exceeds the whole budget.
///
/// Such an entry could never become resident — admitting it would evict
/// the entire cache and still fail — so the store refuses it up front and
/// the caller counts it (`cache.oversize.count`) instead of silently
/// dropping it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oversize {
    /// Bytes the entry would have charged (including overhead).
    pub charge: u64,
    /// The cache's whole budget.
    pub budget: u64,
}

impl std::fmt::Display for Oversize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entry of {} bytes exceeds whole cache budget of {} bytes",
            self.charge, self.budget
        )
    }
}

impl std::error::Error for Oversize {}

/// One evicted entry, reported back to the caller for byte accounting.
#[derive(Debug, Clone, Copy)]
pub struct Eviction {
    /// Key of the evicted entry.
    pub key: CacheKey,
    /// Bytes the entry had charged (including overhead).
    pub bytes: u64,
}

/// Lifetime counters, readable at any time via [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Payload bytes handed out by hits.
    pub hit_bytes: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries admitted.
    pub inserts: u64,
    /// Payload bytes admitted.
    pub insert_bytes: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Payload bytes evicted.
    pub evict_bytes: u64,
    /// Inserts refused because the entry exceeded the whole budget.
    pub oversize: u64,
}

#[derive(Debug)]
struct Node {
    key: CacheKey,
    value: Payload,
    /// Caller-supplied payload bytes (excluding overhead).
    bytes: u64,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    used: u64,
    stats: CacheStats,
}

/// A concurrent, byte-budgeted, content-addressed result cache.
///
/// Interior mutability via a single `Mutex`: operations are short
/// (pointer splices and an `Arc` clone), so one lock is cheaper and
/// simpler than sharding for the artifact rates involved.
#[derive(Debug)]
pub struct ResultCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache that will hold at most `budget_bytes` of charged entries.
    pub fn new(budget_bytes: u64) -> Self {
        ResultCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                head: NIL,
                tail: NIL,
                ..Inner::default()
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Looks up `key`, promoting it on a hit.
    ///
    /// Returns the payload and its charged byte size. Both hit and miss
    /// are recorded in [`CacheStats`].
    pub fn get(&self, key: CacheKey) -> Option<(Payload, u64)> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match inner.map.get(&key).copied() {
            Some(idx) => {
                inner.unlink(idx);
                inner.push_front(idx);
                let bytes = inner.slab[idx].bytes;
                inner.stats.hits += 1;
                inner.stats.hit_bytes += bytes;
                Some((Arc::clone(&inner.slab[idx].value), bytes))
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces `key`, evicting cold entries as needed.
    ///
    /// `bytes` is the caller-computed payload size; the store adds
    /// [`ENTRY_OVERHEAD`] on top. Returns the evicted entries (coldest
    /// first), or [`Oversize`] if the entry could never fit — the caller
    /// should count that rather than retry.
    pub fn insert(
        &self,
        key: CacheKey,
        value: Payload,
        bytes: u64,
    ) -> Result<Vec<Eviction>, Oversize> {
        let charge = bytes + ENTRY_OVERHEAD;
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if charge > self.budget {
            inner.stats.oversize += 1;
            return Err(Oversize {
                charge,
                budget: self.budget,
            });
        }
        if let Some(idx) = inner.map.get(&key).copied() {
            // Replace in place, adjust charge.
            let old_charge = inner.slab[idx].bytes + ENTRY_OVERHEAD;
            inner.used -= old_charge;
            inner.slab[idx].value = value;
            inner.slab[idx].bytes = bytes;
            inner.used += charge;
            inner.unlink(idx);
            inner.push_front(idx);
        } else {
            let idx = inner.alloc(key, value, bytes);
            inner.map.insert(key, idx);
            inner.push_front(idx);
            inner.used += charge;
            inner.stats.inserts += 1;
            inner.stats.insert_bytes += bytes;
        }
        let mut evicted = Vec::new();
        while inner.used > self.budget {
            match inner.evict_coldest() {
                Some(ev) => evicted.push(ev),
                None => break,
            }
        }
        Ok(evicted)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget (including overhead).
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().expect("cache lock poisoned").used
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock poisoned").stats
    }

    /// Drops every resident entry (stats are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.clear();
        inner.slab.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.used = 0;
    }
}

impl Inner {
    fn alloc(&mut self, key: CacheKey, value: Payload, bytes: u64) -> usize {
        let node = Node {
            key,
            value,
            bytes,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    fn evict_coldest(&mut self) -> Option<Eviction> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        let key = self.slab[idx].key;
        let bytes = self.slab[idx].bytes;
        // Drop the cache's Arc; outstanding hit handles stay valid.
        self.slab[idx].value = Arc::new(());
        self.used -= bytes + ENTRY_OVERHEAD;
        self.map.remove(&key);
        self.free.push(idx);
        self.stats.evictions += 1;
        self.stats.evict_bytes += bytes;
        Some(Eviction { key, bytes })
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn key(n: u64) -> CacheKey {
        let mut k = KeyBuilder::new();
        k.write_u64(n);
        k.finish()
    }

    fn payload(v: Vec<u64>) -> Payload {
        Arc::new(v)
    }

    /// Budget for `entries` payloads of `bytes` each, overhead included.
    fn budget_for(entries: u64, bytes: u64) -> u64 {
        entries * (bytes + ENTRY_OVERHEAD)
    }

    #[test]
    fn hit_is_the_same_arc() {
        let c = ResultCache::new(budget_for(4, 100));
        let p: Arc<Vec<u64>> = Arc::new(vec![1, 2, 3]);
        c.insert(key(1), Arc::clone(&p) as Payload, 100).unwrap();
        let (hit, bytes) = c.get(key(1)).expect("resident");
        assert_eq!(bytes, 100);
        let typed = hit.downcast::<Vec<u64>>().expect("type round-trips");
        assert!(Arc::ptr_eq(&typed, &p), "hit must be zero-copy");
        assert_eq!(*typed, vec![1, 2, 3]);
    }

    #[test]
    fn miss_then_hit_counts() {
        let c = ResultCache::new(budget_for(4, 10));
        assert!(c.get(key(7)).is_none());
        c.insert(key(7), payload(vec![7]), 10).unwrap();
        assert!(c.get(key(7)).is_some());
        let s = c.stats();
        assert_eq!((s.misses, s.hits, s.inserts), (1, 1, 1));
        assert_eq!(s.hit_bytes, 10);
        assert_eq!(s.insert_bytes, 10);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let c = ResultCache::new(budget_for(2, 10));
        c.insert(key(1), payload(vec![1]), 10).unwrap();
        c.insert(key(2), payload(vec![2]), 10).unwrap();
        c.get(key(1)); // promote 1; 2 is now coldest
        let ev = c.insert(key(3), payload(vec![3]), 10).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, key(2));
        assert_eq!(ev[0].bytes, 10);
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(2)).is_none());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().evict_bytes, 10);
    }

    #[test]
    fn oversize_is_a_typed_rejection() {
        let c = ResultCache::new(128);
        let err = c.insert(key(1), payload(vec![0; 64]), 1000).unwrap_err();
        assert_eq!(err.charge, 1000 + ENTRY_OVERHEAD);
        assert_eq!(err.budget, 128);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().oversize, 1);
        // The rejection did not disturb resident entries.
        c.insert(key(2), payload(vec![2]), 10).unwrap();
        let err = c.insert(key(3), payload(vec![3]), 1000).unwrap_err();
        assert!(err.charge > err.budget);
        assert!(c.get(key(2)).is_some());
    }

    #[test]
    fn exact_budget_boundary_fits() {
        let budget = 100 + ENTRY_OVERHEAD;
        let c = ResultCache::new(budget);
        // charge == budget: fits.
        c.insert(key(1), payload(vec![1]), 100).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), budget);
        // charge == budget + 1: typed rejection.
        let err = c.insert(key(2), payload(vec![2]), 101).unwrap_err();
        assert_eq!(err.charge, budget + 1);
        assert!(c.get(key(1)).is_some(), "resident entry undisturbed");
    }

    #[test]
    fn replace_adjusts_charge() {
        let c = ResultCache::new(budget_for(2, 100));
        c.insert(key(1), payload(vec![1]), 100).unwrap();
        let before = c.used_bytes();
        c.insert(key(1), payload(vec![1, 1]), 150).unwrap();
        assert_eq!(c.used_bytes(), before + 50);
        assert_eq!(c.len(), 1);
        // Replacement is not a new insert.
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn eviction_does_not_invalidate_outstanding_hits() {
        let c = ResultCache::new(budget_for(1, 10));
        c.insert(key(1), payload(vec![42]), 10).unwrap();
        let (held, _) = c.get(key(1)).unwrap();
        // Evict key 1 by inserting key 2.
        c.insert(key(2), payload(vec![2]), 10).unwrap();
        assert!(c.get(key(1)).is_none());
        let typed = held.downcast::<Vec<u64>>().unwrap();
        assert_eq!(*typed, vec![42], "held Arc survives eviction");
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let c = ResultCache::new(budget_for(4, 10));
        c.insert(key(1), payload(vec![1]), 10).unwrap();
        c.get(key(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().hits, 1);
        // Reusable after clear.
        c.insert(key(1), payload(vec![1]), 10).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_accounted() {
        let c = std::sync::Arc::new(ResultCache::new(budget_for(8, 8)));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let k = key(i % 16);
                        if c.get(k).is_none() {
                            let _ = c.insert(k, payload(vec![t, i]), 8);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(c.used_bytes() <= c.budget_bytes());
    }
}
