//! Model-based property tests: the store must behave exactly like a
//! `HashMap<Vec<u8>, Vec<u8>>` under any interleaving of operations, for
//! any cache size, including across recovery and compaction.

use mr_kvstore::{Store, StoreConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Get(u16),
    Delete(u16),
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k % 200, v)),
        3 => any::<u16>().prop_map(|k| Op::Get(k % 200)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 200)),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn fresh_dir(case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mr-kv-prop-{}-{case}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_matches_hashmap_model(
        ops in prop::collection::vec(op_strategy(), 1..120),
        cache_bytes in 64usize..4096,
        case in any::<u64>(),
    ) {
        let dir = fresh_dir(case);
        let cfg = || StoreConfig::new(&dir).cache_bytes(cache_bytes).segment_bytes(2048);
        let mut store = Store::open(cfg()).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let key = k.to_le_bytes().to_vec();
                    store.put(&key, v).unwrap();
                    model.insert(key, v.clone());
                }
                Op::Get(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(store.get(&key).unwrap(), model.get(&key).cloned());
                }
                Op::Delete(k) => {
                    let key = k.to_le_bytes().to_vec();
                    let existed = store.delete(&key).unwrap();
                    prop_assert_eq!(existed, model.remove(&key).is_some());
                }
                Op::Compact => {
                    store.compact().unwrap();
                }
                Op::Reopen => {
                    store.flush().unwrap();
                    drop(store);
                    store = Store::open(cfg()).unwrap();
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }

        // Final full scan must equal the model, sorted by key.
        let mut expect: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        expect.sort();
        prop_assert_eq!(store.scan_sorted().unwrap(), expect);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
