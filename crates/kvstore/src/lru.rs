//! Byte-budgeted LRU record cache.
//!
//! A classic intrusive doubly-linked list threaded through a slab, with a
//! `HashMap` for key lookup. Entries are charged `key + value + OVERHEAD`
//! bytes against the budget; inserting past the budget evicts from the cold
//! end until the new entry fits.

use std::collections::HashMap;

/// Fixed per-entry bookkeeping charge (slab node + map entry, rounded).
pub const ENTRY_OVERHEAD: usize = 64;

const NIL: usize = usize::MAX;

/// Typed rejection for an entry whose charge exceeds the whole budget.
///
/// Admitting such an entry would evict everything else and still not fit,
/// so [`LruCache::put`] refuses it up front. Returning the rejection as an
/// error (instead of silently bypassing the cache) lets callers count the
/// event — the result-cache layer reports it as `cache.oversize.count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizeEntry {
    /// Bytes the entry would have charged (including `ENTRY_OVERHEAD`).
    pub charge: usize,
    /// The cache's whole budget.
    pub budget: usize,
}

impl std::fmt::Display for OversizeEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entry of {} bytes exceeds whole cache budget of {} bytes",
            self.charge, self.budget
        )
    }
}

impl std::error::Error for OversizeEntry {}

#[derive(Debug)]
struct Node {
    key: Box<[u8]>,
    value: Box<[u8]>,
    prev: usize,
    next: usize,
}

/// An LRU cache holding byte-string keys and values under a byte budget.
#[derive(Debug)]
pub struct LruCache {
    budget: usize,
    used: usize,
    map: HashMap<Box<[u8]>, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    evictions: u64,
}

impl LruCache {
    /// A cache that will hold at most `budget` bytes of entries.
    pub fn new(budget: usize) -> Self {
        LruCache {
            budget,
            used: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    fn charge(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + ENTRY_OVERHEAD
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<&[u8]> {
        let &idx = self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.slab[idx].value)
    }

    /// Whether `key` is resident, *without* promoting it.
    pub fn peek_contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts or replaces `key`, evicting cold entries as needed.
    ///
    /// Returns the evicted entries (coldest first). An entry larger than
    /// the whole budget is refused with a typed [`OversizeEntry`] so the
    /// caller can count the rejection; resident entries are undisturbed.
    #[allow(clippy::type_complexity)]
    pub fn put(
        &mut self,
        key: &[u8],
        value: &[u8],
    ) -> Result<Vec<(Box<[u8]>, Box<[u8]>)>, OversizeEntry> {
        let charge = Self::charge(key, value);
        if charge > self.budget {
            return Err(OversizeEntry {
                charge,
                budget: self.budget,
            });
        }
        let mut evicted = Vec::new();
        if let Some(&idx) = self.map.get(key) {
            // Replace in place, adjust charge.
            self.used -= Self::charge(&self.slab[idx].key, &self.slab[idx].value);
            self.slab[idx].value = value.into();
            self.used += charge;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let idx = self.alloc(key.into(), value.into());
            self.map.insert(key.into(), idx);
            self.push_front(idx);
            self.used += charge;
        }
        while self.used > self.budget {
            if let Some(entry) = self.evict_coldest() {
                evicted.push(entry);
            } else {
                break;
            }
        }
        Ok(evicted)
    }

    /// Removes `key` if present, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Box<[u8]>> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let node = std::mem::replace(
            &mut self.slab[idx],
            Node {
                key: Box::default(),
                value: Box::default(),
                prev: NIL,
                next: NIL,
            },
        );
        self.used -= Self::charge(&node.key, &node.value);
        self.free.push(idx);
        Some(node.value)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    #[allow(clippy::type_complexity)]
    fn evict_coldest(&mut self) -> Option<(Box<[u8]>, Box<[u8]>)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        let node = std::mem::replace(
            &mut self.slab[idx],
            Node {
                key: Box::default(),
                value: Box::default(),
                prev: NIL,
                next: NIL,
            },
        );
        self.used -= Self::charge(&node.key, &node.value);
        self.map.remove(&node.key);
        self.free.push(idx);
        self.evictions += 1;
        Some((node.key, node.value))
    }

    fn alloc(&mut self, key: Box<[u8]>, value: Box<[u8]>) -> usize {
        let node = Node {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_for(entries: usize, entry_bytes: usize) -> LruCache {
        LruCache::new(entries * (entry_bytes + ENTRY_OVERHEAD))
    }

    #[test]
    fn get_after_put() {
        let mut c = cache_for(4, 2);
        c.put(b"a", b"1").unwrap();
        c.put(b"b", b"2").unwrap();
        assert_eq!(c.get(b"a"), Some(&b"1"[..]));
        assert_eq!(c.get(b"b"), Some(&b"2"[..]));
        assert_eq!(c.get(b"z"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = cache_for(2, 2);
        c.put(b"a", b"1").unwrap();
        c.put(b"b", b"2").unwrap();
        c.get(b"a"); // promote a; b is now coldest
        let evicted = c.put(b"c", b"3").unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(&*evicted[0].0, b"b");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"b").is_none());
        assert!(c.get(b"c").is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn replace_updates_value_and_charge() {
        let mut c = cache_for(2, 16);
        c.put(b"k", b"short").unwrap();
        let before = c.used_bytes();
        c.put(b"k", b"a-much-longer-value").unwrap();
        assert!(c.used_bytes() > before);
        assert_eq!(c.get(b"k"), Some(&b"a-much-longer-value"[..]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entry_is_a_typed_rejection() {
        let mut c = LruCache::new(32);
        let err = c.put(b"big", &[0u8; 1000]).unwrap_err();
        assert_eq!(err.charge, 3 + 1000 + ENTRY_OVERHEAD);
        assert_eq!(err.budget, 32);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(b"big"), None);
    }

    #[test]
    fn oversized_put_leaves_residents_undisturbed() {
        let mut c = cache_for(2, 2);
        c.put(b"a", b"1").unwrap();
        let err = c.put(b"big", &[0u8; 1000]).unwrap_err();
        assert!(err.charge > err.budget);
        assert_eq!(c.get(b"a"), Some(&b"1"[..]));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn budget_boundary_is_exact() {
        // charge == budget: fits.
        let mut c = LruCache::new(1 + 1 + ENTRY_OVERHEAD);
        assert!(c.put(b"a", b"1").unwrap().is_empty());
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), c.budget_bytes());
        // charge == budget + 1: rejected, not silently dropped.
        let mut c = LruCache::new(1 + 1 + ENTRY_OVERHEAD - 1);
        let err = c.put(b"a", b"1").unwrap_err();
        assert_eq!(err.charge, err.budget + 1);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_frees_budget() {
        let mut c = cache_for(2, 2);
        c.put(b"a", b"1").unwrap();
        let used = c.used_bytes();
        assert_eq!(c.remove(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(c.used_bytes(), used - (1 + 1 + ENTRY_OVERHEAD));
        assert_eq!(c.remove(b"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut c = cache_for(1, 2);
        for i in 0..100u8 {
            c.put(&[i], b"v").unwrap();
        }
        // Only one resident at a time; slab should not grow unbounded.
        assert_eq!(c.len(), 1);
        assert!(c.slab.len() <= 2, "slab grew to {}", c.slab.len());
    }

    #[test]
    fn eviction_order_is_exact_lru() {
        let mut c = cache_for(3, 2);
        c.put(b"a", b"1").unwrap();
        c.put(b"b", b"2").unwrap();
        c.put(b"c", b"3").unwrap();
        c.get(b"a");
        c.get(b"c");
        // LRU order now: b (coldest), a, c.
        let ev = c.put(b"d", b"4").unwrap();
        assert_eq!(&*ev[0].0, b"b");
        let ev = c.put(b"e", b"5").unwrap();
        assert_eq!(&*ev[0].0, b"a");
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = cache_for(2, 2);
        c.put(b"a", b"1").unwrap();
        c.put(b"b", b"2").unwrap();
        assert!(c.peek_contains(b"a"));
        // a was NOT promoted, so it is still the coldest.
        let ev = c.put(b"c", b"3").unwrap();
        assert_eq!(&*ev[0].0, b"a");
    }
}
