//! The store: index + active segment + record cache.

use crate::lru::LruCache;
use crate::segment::{segment_path, SegmentId, SegmentReader, SegmentWriter};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Where a live record lives on disk.
#[derive(Debug, Clone, Copy)]
struct Loc {
    segment: SegmentId,
    offset: u64,
}

/// Configuration for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory for segment files (created if missing).
    pub dir: PathBuf,
    /// Record-cache budget in bytes.
    pub cache_bytes: usize,
    /// Roll the active segment after this many bytes.
    pub segment_bytes: u64,
}

impl StoreConfig {
    /// Defaults: 16 MB cache, 64 MB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            cache_bytes: 16 << 20,
            segment_bytes: 64 << 20,
        }
    }

    /// Sets the record-cache budget.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the segment roll size.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }
}

/// Operation counters exposed for cost modelling and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total `put` calls.
    pub puts: u64,
    /// Total `get` calls.
    pub gets: u64,
    /// Gets served from the record cache.
    pub cache_hits: u64,
    /// Gets that had to touch disk.
    pub cache_misses: u64,
    /// Records pushed out of the cache.
    pub evictions: u64,
    /// Bytes appended to segment logs.
    pub bytes_written: u64,
    /// Bytes read back from segment logs.
    pub bytes_read: u64,
    /// Active-segment flushes forced by reads of unflushed data.
    pub read_stalls: u64,
}

/// A single-writer disk-spilling key/value store.
pub struct Store {
    cfg: StoreConfig,
    index: HashMap<Box<[u8]>, Loc>,
    cache: LruCache,
    active: SegmentWriter,
    readers: HashMap<SegmentId, SegmentReader>,
    sealed: Vec<SegmentId>,
    next_segment: u32,
    stats: StoreStats,
}

impl Store {
    /// Opens (or creates) a store in `cfg.dir`. Any existing segment files
    /// in the directory are replayed to rebuild the index (recovery).
    pub fn open(cfg: StoreConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut existing: Vec<SegmentId> = std::fs::read_dir(&cfg.dir)?
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let num = name.strip_prefix("seg-")?.strip_suffix(".log")?;
                Some(SegmentId(num.parse().ok()?))
            })
            .collect();
        existing.sort();

        let mut index = HashMap::new();
        for &seg in &existing {
            let mut reader = SegmentReader::open(&cfg.dir, seg)?;
            for (offset, key, value) in reader.scan()? {
                match value {
                    Some(_) => {
                        index.insert(
                            key.into_boxed_slice(),
                            Loc {
                                segment: seg,
                                offset,
                            },
                        );
                    }
                    None => {
                        index.remove(key.as_slice());
                    }
                }
            }
        }
        let next = existing.last().map_or(0, |s| s.0 + 1);
        let active = SegmentWriter::create(&cfg.dir, SegmentId(next))?;
        Ok(Store {
            cache: LruCache::new(cfg.cache_bytes),
            index,
            active,
            readers: HashMap::new(),
            sealed: existing,
            next_segment: next + 1,
            stats: StoreStats::default(),
            cfg,
        })
    }

    /// Inserts or overwrites `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        self.stats.puts += 1;
        let offset = self.active.append(key, value)?;
        self.stats.bytes_written += 8 + key.len() as u64 + value.len() as u64;
        self.index.insert(
            key.into(),
            Loc {
                segment: self.active.id(),
                offset,
            },
        );
        // An oversize record simply stays cold on disk; the typed
        // rejection matters to callers that do their own accounting.
        if let Ok(evicted) = self.cache.put(key, value) {
            self.stats.evictions += evicted.len() as u64;
        }
        if self.active.len() >= self.cfg.segment_bytes {
            self.roll_segment()?;
        }
        Ok(())
    }

    /// Fetches `key`, from cache when hot, from the log otherwise.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        self.stats.gets += 1;
        if let Some(v) = self.cache.get(key) {
            self.stats.cache_hits += 1;
            return Ok(Some(v.to_vec()));
        }
        let Some(&loc) = self.index.get(key) else {
            // Not a *cache* miss: the key simply doesn't exist.
            return Ok(None);
        };
        self.stats.cache_misses += 1;
        let value = self.read_loc(loc)?;
        if let Ok(evicted) = self.cache.put(key, &value) {
            self.stats.evictions += evicted.len() as u64;
        }
        self.stats.bytes_read += 8 + key.len() as u64 + value.len() as u64;
        Ok(Some(value))
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<bool> {
        let existed = self.index.remove(key).is_some();
        if existed {
            self.active.append_tombstone(key)?;
            self.stats.bytes_written += 8 + key.len() as u64;
            self.cache.remove(key);
            if self.active.len() >= self.cfg.segment_bytes {
                self.roll_segment()?;
            }
        }
        Ok(existed)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Flushes the active segment to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.active.flush()
    }

    /// Returns every live `(key, value)` in ascending key order.
    ///
    /// This is the reducer's finalize scan; it deliberately routes through
    /// `get` so cache behaviour (and its cost) is identical to BDB cursor
    /// reads over a cold working set.
    pub fn scan_sorted(&mut self) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut keys: Vec<Box<[u8]>> = self.index.keys().cloned().collect();
        keys.sort();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let value = self
                .get(&key)?
                .expect("indexed key must be readable during scan");
            out.push((key.into_vec(), value));
        }
        Ok(out)
    }

    /// Rewrites live records into fresh segments, dropping dead versions
    /// and tombstones. Returns bytes reclaimed (old log size − new).
    pub fn compact(&mut self) -> io::Result<u64> {
        self.flush()?;
        let old_segments: Vec<SegmentId> = self
            .sealed
            .iter()
            .copied()
            .chain(std::iter::once(self.active.id()))
            .collect();
        let old_bytes: u64 = old_segments
            .iter()
            .map(|&s| {
                std::fs::metadata(segment_path(&self.cfg.dir, s))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();

        // Stream live records into new segments.
        let mut keys: Vec<Box<[u8]>> = self.index.keys().cloned().collect();
        keys.sort();
        let new_first = SegmentId(self.next_segment);
        self.next_segment += 1;
        let mut writer = SegmentWriter::create(&self.cfg.dir, new_first)?;
        let mut new_sealed = Vec::new();
        let mut new_index: HashMap<Box<[u8]>, Loc> = HashMap::with_capacity(keys.len());
        for key in keys {
            let loc = self.index[&key];
            let value = self.read_loc(loc)?;
            if writer.len() >= self.cfg.segment_bytes {
                writer.flush()?;
                new_sealed.push(writer.id());
                let next = SegmentId(self.next_segment);
                self.next_segment += 1;
                writer = SegmentWriter::create(&self.cfg.dir, next)?;
            }
            let offset = writer.append(&key, &value)?;
            self.stats.bytes_written += 8 + key.len() as u64 + value.len() as u64;
            new_index.insert(
                key,
                Loc {
                    segment: writer.id(),
                    offset,
                },
            );
        }
        writer.flush()?;
        let new_bytes = writer.len()
            + new_sealed
                .iter()
                .map(|&s| {
                    std::fs::metadata(segment_path(&self.cfg.dir, s))
                        .map(|m| m.len())
                        .unwrap_or(0)
                })
                .sum::<u64>();

        // Swap in the new generation and delete the old files.
        self.readers.clear();
        self.index = new_index;
        self.sealed = new_sealed;
        self.active = writer;
        // The fresh active segment keeps accepting writes; reads of it are
        // safe because it was flushed above.
        for seg in old_segments {
            std::fs::remove_file(segment_path(&self.cfg.dir, seg)).ok();
        }
        Ok(old_bytes.saturating_sub(new_bytes))
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Bytes resident in the record cache.
    pub fn cache_used_bytes(&self) -> usize {
        self.cache.used_bytes()
    }

    /// Count of on-disk segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    fn read_loc(&mut self, loc: Loc) -> io::Result<Vec<u8>> {
        if loc.segment == self.active.id() && !self.active.is_flushed_past(loc.offset) {
            self.active.flush()?;
            self.stats.read_stalls += 1;
            // The active segment's reader (if any) sees the new bytes since
            // it reads from the same file.
        }
        let dir = self.cfg.dir.clone();
        let reader = match self.readers.entry(loc.segment) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SegmentReader::open(&dir, loc.segment)?)
            }
        };
        let (_key, value) = reader.read_at(loc.offset)?;
        value.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "index pointed at a tombstone — store corrupted",
            )
        })
    }

    fn roll_segment(&mut self) -> io::Result<()> {
        self.active.flush()?;
        self.sealed.push(self.active.id());
        let next = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.active = SegmentWriter::create(&self.cfg.dir, next)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_tmp(tag: &str, cache: usize, segment: u64) -> (Store, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mr-kv-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(
            StoreConfig::new(&dir)
                .cache_bytes(cache)
                .segment_bytes(segment),
        )
        .unwrap();
        (store, dir)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut kv, dir) = open_tmp("rt", 1 << 20, 1 << 20);
        kv.put(b"hello", b"world").unwrap();
        assert_eq!(kv.get(b"hello").unwrap().unwrap(), b"world");
        assert_eq!(kv.get(b"missing").unwrap(), None);
        assert_eq!(kv.len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn overwrite_returns_latest() {
        let (mut kv, dir) = open_tmp("ow", 1 << 20, 1 << 20);
        kv.put(b"k", b"v1").unwrap();
        kv.put(b"k", b"v2").unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"v2");
        assert_eq!(kv.len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reads_spill_to_disk_when_cache_is_tiny() {
        // Cache fits ~2 entries; write 500, read them all back.
        let (mut kv, dir) = open_tmp("spill", 300, 1 << 20);
        for i in 0..500u32 {
            kv.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        for i in 0..500u32 {
            let v = kv.get(&i.to_le_bytes()).unwrap().unwrap();
            assert_eq!(v, (i * 3).to_le_bytes());
        }
        let st = kv.stats();
        assert!(st.cache_misses > 400, "expected mostly misses: {st:?}");
        assert!(st.evictions > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn hot_keys_hit_cache() {
        let (mut kv, dir) = open_tmp("hot", 1 << 20, 1 << 20);
        kv.put(b"hot", b"x").unwrap();
        for _ in 0..100 {
            kv.get(b"hot").unwrap();
        }
        let st = kv.stats();
        assert_eq!(st.cache_hits, 100);
        assert_eq!(st.cache_misses, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn delete_removes_and_tombstones_survive_recovery() {
        let (mut kv, dir) = open_tmp("del", 1 << 20, 1 << 20);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        assert!(kv.delete(b"a").unwrap());
        assert!(!kv.delete(b"a").unwrap());
        assert_eq!(kv.get(b"a").unwrap(), None);
        kv.flush().unwrap();
        drop(kv);

        let kv2 = Store::open(StoreConfig::new(&dir)).unwrap();
        let mut kv2 = kv2;
        assert_eq!(kv2.get(b"a").unwrap(), None);
        assert_eq!(kv2.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(kv2.len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_replays_the_log() {
        let (mut kv, dir) = open_tmp("rec", 1 << 20, 4 << 10);
        for i in 0..1000u32 {
            kv.put(&i.to_le_bytes(), &(i ^ 0xAB).to_le_bytes()).unwrap();
        }
        kv.flush().unwrap();
        let segs = kv.segment_count();
        assert!(segs > 1, "should have rolled segments, got {segs}");
        drop(kv);

        let mut kv2 = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(kv2.len(), 1000);
        for i in (0..1000u32).step_by(97) {
            assert_eq!(
                kv2.get(&i.to_le_bytes()).unwrap().unwrap(),
                (i ^ 0xAB).to_le_bytes()
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scan_sorted_yields_ascending_keys() {
        let (mut kv, dir) = open_tmp("scan", 512, 1 << 20);
        for i in [5u32, 1, 9, 3, 7] {
            kv.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let all = kv.scan_sorted().unwrap();
        let keys: Vec<u32> = all
            .iter()
            .map(|(k, _)| u32::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compaction_reclaims_dead_versions() {
        let (mut kv, dir) = open_tmp("compact", 1 << 10, 8 << 10);
        // Overwrite the same small key set many times: log >> live data.
        for round in 0..200u32 {
            for k in 0..10u32 {
                kv.put(&k.to_le_bytes(), &(round * k).to_le_bytes())
                    .unwrap();
            }
        }
        let before_segments = kv.segment_count();
        let reclaimed = kv.compact().unwrap();
        assert!(reclaimed > 0, "nothing reclaimed");
        assert!(kv.segment_count() < before_segments);
        // Data intact, latest versions visible.
        for k in 0..10u32 {
            assert_eq!(
                kv.get(&k.to_le_bytes()).unwrap().unwrap(),
                (199 * k).to_le_bytes()
            );
        }
        // Store still writable after compaction.
        kv.put(b"post", b"compact").unwrap();
        assert_eq!(kv.get(b"post").unwrap().unwrap(), b"compact");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_of_unflushed_active_data_stalls_then_succeeds() {
        // Tiny cache so the fresh put is evicted immediately, forcing the
        // read to hit the (unflushed) active segment.
        let (mut kv, dir) = open_tmp("stall", 80, 1 << 20);
        kv.put(b"aaaaaaaaaa", b"1111111111").unwrap();
        kv.put(b"bbbbbbbbbb", b"2222222222").unwrap(); // evicts a
        assert_eq!(kv.get(b"aaaaaaaaaa").unwrap().unwrap(), b"1111111111");
        assert!(kv.stats().read_stalls >= 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn stats_count_operations() {
        let (mut kv, dir) = open_tmp("stats", 1 << 20, 1 << 20);
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        kv.get(b"nope").unwrap();
        let st = kv.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 0, "absent key is not a cache miss");
        assert!(st.bytes_written > 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
