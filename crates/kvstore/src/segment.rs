//! Append-only log segments.
//!
//! Record layout: `[u32 key_len][u32 val_len][key bytes][val bytes]`, all
//! little-endian, no padding. A `val_len` of `u32::MAX` marks a tombstone.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Marks a deletion in the log.
pub const TOMBSTONE: u32 = u32::MAX;

/// Identifies a segment file within one store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

/// Path of segment `id` under `dir`.
pub fn segment_path(dir: &Path, id: SegmentId) -> PathBuf {
    dir.join(format!("seg-{:06}.log", id.0))
}

/// Buffered appender for the active segment.
pub struct SegmentWriter {
    id: SegmentId,
    out: BufWriter<File>,
    /// Bytes handed to the writer (including any still in the buffer).
    written: u64,
    /// Bytes known to have reached the file.
    flushed: u64,
}

impl SegmentWriter {
    /// Creates (truncates) segment `id` under `dir`.
    pub fn create(dir: &Path, id: SegmentId) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(segment_path(dir, id))?;
        Ok(SegmentWriter {
            id,
            out: BufWriter::with_capacity(256 << 10, file),
            written: 0,
            flushed: 0,
        })
    }

    /// Appends a record; returns its starting offset within the segment.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> io::Result<u64> {
        let offset = self.written;
        self.out.write_all(&(key.len() as u32).to_le_bytes())?;
        self.out.write_all(&(value.len() as u32).to_le_bytes())?;
        self.out.write_all(key)?;
        self.out.write_all(value)?;
        self.written += 8 + key.len() as u64 + value.len() as u64;
        Ok(offset)
    }

    /// Appends a tombstone for `key`; returns its starting offset.
    pub fn append_tombstone(&mut self, key: &[u8]) -> io::Result<u64> {
        let offset = self.written;
        self.out.write_all(&(key.len() as u32).to_le_bytes())?;
        self.out.write_all(&TOMBSTONE.to_le_bytes())?;
        self.out.write_all(key)?;
        self.written += 8 + key.len() as u64;
        Ok(offset)
    }

    /// Pushes buffered bytes to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.flushed = self.written;
        Ok(())
    }

    /// Total bytes appended so far.
    pub fn len(&self) -> u64 {
        self.written
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Whether `offset` is safely readable from the file without a flush.
    pub fn is_flushed_past(&self, offset: u64) -> bool {
        offset < self.flushed
    }

    /// This writer's segment id.
    pub fn id(&self) -> SegmentId {
        self.id
    }
}

/// Random-access reader over a sealed (or flushed) segment.
pub struct SegmentReader {
    file: File,
}

impl SegmentReader {
    /// Opens segment `id` under `dir` for reading.
    pub fn open(dir: &Path, id: SegmentId) -> io::Result<Self> {
        Ok(SegmentReader {
            file: File::open(segment_path(dir, id))?,
        })
    }

    /// Reads the record at `offset`, returning `(key, value)`;
    /// `value` is `None` for a tombstone.
    #[allow(clippy::type_complexity)]
    pub fn read_at(&mut self, offset: u64) -> io::Result<(Vec<u8>, Option<Vec<u8>>)> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; 8];
        self.file.read_exact(&mut header)?;
        let key_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let val_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let mut key = vec![0u8; key_len as usize];
        self.file.read_exact(&mut key)?;
        if val_len == TOMBSTONE {
            return Ok((key, None));
        }
        let mut val = vec![0u8; val_len as usize];
        self.file.read_exact(&mut val)?;
        Ok((key, Some(val)))
    }

    /// Iterates every record in the segment from the start, yielding
    /// `(offset, key, value-or-tombstone)`. Used by recovery and compaction.
    #[allow(clippy::type_complexity)]
    pub fn scan(&mut self) -> io::Result<Vec<(u64, Vec<u8>, Option<Vec<u8>>)>> {
        let end = self.file.seek(SeekFrom::End(0))?;
        let mut offset = 0u64;
        let mut out = Vec::new();
        while offset < end {
            let (key, val) = self.read_at(offset)?;
            let advance = 8 + key.len() as u64 + val.as_ref().map_or(0, |v| v.len() as u64);
            out.push((offset, key, val));
            offset += advance;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mr-kv-seg-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_records() {
        let dir = tmpdir("rt");
        let mut w = SegmentWriter::create(&dir, SegmentId(0)).unwrap();
        let o1 = w.append(b"alpha", b"1").unwrap();
        let o2 = w.append(b"beta", b"two").unwrap();
        let o3 = w.append_tombstone(b"alpha").unwrap();
        w.flush().unwrap();
        assert!(w.is_flushed_past(o3));

        let mut r = SegmentReader::open(&dir, SegmentId(0)).unwrap();
        assert_eq!(
            r.read_at(o1).unwrap(),
            (b"alpha".to_vec(), Some(b"1".to_vec()))
        );
        assert_eq!(
            r.read_at(o2).unwrap(),
            (b"beta".to_vec(), Some(b"two".to_vec()))
        );
        assert_eq!(r.read_at(o3).unwrap(), (b"alpha".to_vec(), None));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_recovers_everything_in_order() {
        let dir = tmpdir("scan");
        let mut w = SegmentWriter::create(&dir, SegmentId(3)).unwrap();
        for i in 0..50u32 {
            w.append(&i.to_le_bytes(), &(i * 2).to_le_bytes()).unwrap();
        }
        w.append_tombstone(&7u32.to_le_bytes()).unwrap();
        w.flush().unwrap();

        let mut r = SegmentReader::open(&dir, SegmentId(3)).unwrap();
        let records = r.scan().unwrap();
        assert_eq!(records.len(), 51);
        for (i, (_, key, val)) in records.iter().take(50).enumerate() {
            assert_eq!(key, &(i as u32).to_le_bytes());
            assert_eq!(val.as_deref(), Some(&((i as u32) * 2).to_le_bytes()[..]));
        }
        assert_eq!(records[50].2, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_values_and_keys() {
        let dir = tmpdir("empty");
        let mut w = SegmentWriter::create(&dir, SegmentId(0)).unwrap();
        let o1 = w.append(b"", b"value-for-empty-key").unwrap();
        let o2 = w.append(b"key-with-empty-value", b"").unwrap();
        w.flush().unwrap();
        let mut r = SegmentReader::open(&dir, SegmentId(0)).unwrap();
        assert_eq!(r.read_at(o1).unwrap().1.unwrap(), b"value-for-empty-key");
        assert_eq!(r.read_at(o2).unwrap().1.unwrap(), b"");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn written_length_tracks_bytes() {
        let dir = tmpdir("len");
        let mut w = SegmentWriter::create(&dir, SegmentId(0)).unwrap();
        assert!(w.is_empty());
        w.append(b"ab", b"cde").unwrap();
        assert_eq!(w.len(), 8 + 2 + 3);
        assert_eq!(w.id(), SegmentId(0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
