//! `mr-kvstore` — a disk-spilling key/value store (BerkeleyDB JE stand-in).
//!
//! §5.2 of the paper stores reducer partial results in an off-the-shelf
//! key/value store that caches hot records in memory and spills to disk.
//! The paper used BerkeleyDB Java Edition, "configured for performance
//! without guaranteeing fault-tolerance". This crate re-implements exactly
//! the mechanisms that matter for the comparison in Figures 9/10:
//!
//! * **Log-structured writes** — every `put` appends to the active segment
//!   file through a buffered writer (BDB JE is also a log-structured tree;
//!   transaction logs were kept in memory in the paper's configuration).
//! * **In-memory index** — key → (segment, offset) map, so a miss costs one
//!   seek + read.
//! * **Byte-budgeted LRU record cache** — hits are memory-speed, misses go
//!   to disk, hot keys stay resident ("BerkeleyDB … performs caching and
//!   prefetching of common entries … can therefore exploit temporal
//!   locality", §5.3).
//! * **Compaction** — reclaims dead versions from the log.
//!
//! The read-modify-update cycle the barrier-less reducer performs maps to
//! `get` + `put`; [`StoreStats`] exposes hit/miss/eviction counts so the
//! cluster simulator can charge time per operation class.
//!
//! ```
//! # fn main() -> std::io::Result<()> {
//! use mr_kvstore::{Store, StoreConfig};
//! let dir = std::env::temp_dir().join(format!("kv-doc-{}", std::process::id()));
//! let mut kv = Store::open(StoreConfig::new(&dir).cache_bytes(1 << 20))?;
//! kv.put(b"word", b"42")?;
//! assert_eq!(kv.get(b"word")?.as_deref(), Some(&b"42"[..]));
//! # drop(kv); std::fs::remove_dir_all(&dir).ok();
//! # Ok(()) }
//! ```

mod lru;
mod segment;
mod store;

pub use lru::{LruCache, OversizeEntry};
pub use segment::{SegmentId, SegmentReader, SegmentWriter};
pub use store::{Store, StoreConfig, StoreStats};
