//! Figure 8: genetic algorithm with varying numbers of reducers (30–70 on
//! 60 reduce slots).
//!
//! The paper's observations: completion time falls as reducers approach
//! the slot capacity (60), then jumps at 70 when a second reducer wave is
//! needed; the barrier-less improvement *shrinks* toward full utilisation
//! and *grows again* once the second wave re-introduces mapper slack.

use mr_bench::appcfg::{barrierless, run_ga};
use mr_bench::chart::{line_chart, table};
use mr_bench::stats::improvement_pct;
use mr_core::Engine;

fn main() {
    let mappers = 120;
    println!("== Figure 8: GA with varying reducers ({mappers} mappers, 60 reduce slots) ==\n");
    let mut with_barrier = Vec::new();
    let mut without = Vec::new();
    let mut rows = Vec::new();
    for reducers in [30usize, 40, 50, 60, 70] {
        let b = run_ga(mappers, reducers, Engine::Barrier, 42);
        let p = run_ga(mappers, reducers, barrierless(), 42);
        let (tb, tp) = (b.completion_secs(), p.completion_secs());
        with_barrier.push((reducers as f64, tb));
        without.push((reducers as f64, tp));
        rows.push(vec![
            reducers.to_string(),
            format!("{tb:.1}"),
            format!("{tp:.1}"),
            format!("{:+.1}%", improvement_pct(tb, tp)),
            format!("{:.1}", p.mapper_slack_secs()),
            format!("{}", p.reduce_tasks_run),
        ]);
    }
    print!(
        "{}",
        table(
            &[
                "reducers",
                "barrier (s)",
                "barrier-less (s)",
                "improvement",
                "mapper slack (s)",
                "reduce tasks"
            ],
            &rows
        )
    );
    println!();
    print!(
        "{}",
        line_chart(
            "GA completion time vs number of reducers",
            "reducers",
            "time (s)",
            &[("with barrier", with_barrier), ("without barrier", without)],
            64,
            14,
        )
    );
}
