//! Ablation: partial-store index (ordered vs hashed) × engine.
//!
//! The tentpole A/B for `StoreIndex`: the same jobs run with the paper's
//! ordered map (`Ordered`, one tree probe per absorb) and with the FxHash
//! index (`Hashed`, O(1) expected probes + one key sort per drain). The
//! byte-exact output invariant is asserted at every point — the index
//! must be *invisible* in the bytes and only visible in the wall clock.
//!
//! Three sections: the raw absorb hot path (single partition, no
//! threads), the real threaded executor under both engines, and one
//! simulated-cluster run under the cluster-level
//! `ClusterParams::store_index` override (where the interesting number
//! is host wall time — the sim charges the same *virtual* cost either
//! way, but it really executes every absorb).

use mr_bench::appcfg::run_wordcount_configured;
use mr_bench::chart::table;
use mr_bench::stats::improvement_pct;
use mr_core::engine::pipeline::reduce_partition_barrierless;
use mr_core::local::LocalRunner;
use mr_core::{CombinerPolicy, Counters, Engine, JobConfig, MemoryPolicy, StoreIndex};
use mr_workloads::TextWorkload;
use std::time::Instant;

const INDEXES: [(&str, StoreIndex); 2] = [
    ("ordered", StoreIndex::Ordered),
    ("hashed", StoreIndex::Hashed),
];

fn engine_label(e: &Engine) -> &'static str {
    match e {
        Engine::Barrier => "barrier",
        Engine::BarrierLess { .. } => "barrier-less",
    }
}

fn barrierless() -> Engine {
    Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    }
}

fn scratch() -> std::path::PathBuf {
    mr_bench::appcfg::scratch()
}

/// Best-of-3 wall milliseconds.
fn best_of_3(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    println!("== Ablation: partial-store index x engine (WordCount) ==\n");
    let w = TextWorkload {
        seed: 42,
        vocab: 2_000,
        zipf_s: 1.0,
        lines_per_chunk: 400,
        words_per_line: 8,
    };
    let splits: Vec<Vec<(u64, String)>> = (0..16).map(|c| w.chunk(c)).collect();

    // ------------------------------------------- raw absorb hot path
    println!("--- absorb hot path (one partition, no threads) ---");
    let records: Vec<(String, u64)> = splits
        .iter()
        .flat_map(|split| split.iter())
        .flat_map(|(_, line)| line.split_whitespace().map(|word| (word.to_string(), 1u64)))
        .collect();
    let mut rows = Vec::new();
    let mut outputs = Vec::new();
    let mut baseline_ms = f64::NAN;
    for (label, index) in INDEXES {
        let cfg = JobConfig::new(1).engine(barrierless()).store_index(index);
        // Pre-cloned inputs: the per-iteration clone must not be timed.
        let mut inputs: Vec<Vec<(String, u64)>> = (0..3).map(|_| records.clone()).collect();
        let wall_ms = best_of_3(|| {
            reduce_partition_barrierless(
                &mr_apps::WordCount,
                &cfg,
                0,
                inputs.pop().expect("one per iteration"),
                &mut Counters::new(),
            )
            .expect("absorb run");
        });
        let (out, _) = reduce_partition_barrierless(
            &mr_apps::WordCount,
            &cfg,
            0,
            records.clone(),
            &mut Counters::new(),
        )
        .expect("absorb run");
        outputs.push(out);
        let rate = records.len() as f64 / (wall_ms / 1e3) / 1e6;
        let speedup = if baseline_ms.is_nan() {
            baseline_ms = wall_ms;
            "-".to_string()
        } else {
            format!("{:.2}x", baseline_ms / wall_ms)
        };
        rows.push(vec![
            label.to_string(),
            format!("{wall_ms:.2}"),
            format!("{rate:.1}"),
            speedup,
        ]);
    }
    assert_eq!(outputs[0], outputs[1], "index flip changed absorb output");
    print!(
        "{}",
        table(&["index", "wall (ms)", "Mrec/s", "speedup"], &rows)
    );
    println!("\n(byte-exact: {} output records)\n", outputs[0].len());

    // --------------------------------------------- real local executor
    println!("--- real threaded executor (LocalRunner, 16 chunks, combiner on) ---");
    let mut rows = Vec::new();
    for engine in [Engine::Barrier, barrierless()] {
        let mut outputs = Vec::new();
        let mut baseline_ms = f64::NAN;
        for (label, index) in INDEXES {
            let cfg = JobConfig::new(8)
                .engine(engine.clone())
                .combiner(CombinerPolicy::enabled())
                .store_index(index)
                .scratch_dir(scratch());
            let wall_ms = best_of_3(|| {
                LocalRunner::new(4)
                    .run(&mr_apps::WordCount, splits.clone(), &cfg)
                    .expect("local run");
            });
            let out = LocalRunner::new(4)
                .run(&mr_apps::WordCount, splits.clone(), &cfg)
                .expect("local run");
            outputs.push(out.into_sorted_output());
            let speedup = if baseline_ms.is_nan() {
                baseline_ms = wall_ms;
                "-".to_string()
            } else {
                format!("{:+.1}%", improvement_pct(baseline_ms, wall_ms))
            };
            rows.push(vec![
                engine_label(&engine).to_string(),
                label.to_string(),
                format!("{wall_ms:.1}"),
                speedup,
            ]);
        }
        assert_eq!(
            outputs[0],
            outputs[1],
            "index flip changed {} output",
            engine_label(&engine)
        );
    }
    print!(
        "{}",
        table(&["engine", "index", "wall (ms)", "vs ordered"], &rows)
    );
    println!("\n(byte-exact output invariant verified under both engines)\n");

    // ---------------------------------------------- simulated cluster
    println!("--- simulated cluster (1 GB, 8 reducers, cluster-level override) ---");
    let mut rows = Vec::new();
    let mut outputs = Vec::new();
    for (label, index) in INDEXES {
        let start = Instant::now();
        let report = run_wordcount_configured(
            1.0,
            8,
            barrierless(),
            7,
            CombinerPolicy::enabled(),
            Some(index),
        );
        let host_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(report.outcome.is_completed(), "sim failed under {label}");
        let secs = report.outcome.completion_secs().unwrap();
        outputs.push(report.output.expect("completed").into_sorted_output());
        rows.push(vec![
            label.to_string(),
            format!("{secs:.1}"),
            format!("{host_ms:.0}"),
        ]);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "index flip changed simulated output"
    );
    print!(
        "{}",
        table(&["index", "sim completion (s)", "host wall (ms)"], &rows)
    );
    println!("\n(byte-exact under the ClusterParams::store_index override too)");
}
