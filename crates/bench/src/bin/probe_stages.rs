//! Diagnostic: stage timing breakdown for calibration (not a paper figure).

use mr_bench::appcfg::{barrierless, run_knn, run_wordcount};
use mr_cluster::SpanKind;
use mr_core::Engine;

fn main() {
    for (name, report) in [("knn barrier 16GB", run_knn(16.0, 40, Engine::Barrier, 42))] {
        let t = &report.timeline;
        println!("=== {name} ===");
        println!(
            "first_map {:.1} last_map {:.1} shuffle_done {:.1} total {:.1}",
            report.first_map_done.as_secs_f64(),
            report.last_map_done.as_secs_f64(),
            report.shuffle_done.as_secs_f64(),
            report.completion_secs()
        );
        for kind in [
            SpanKind::Map,
            SpanKind::Shuffle,
            SpanKind::SortReduce,
            SpanKind::Output,
        ] {
            if let Some((s, e)) = t.kind_window(kind) {
                println!(
                    "  {kind:?}: {:.1} .. {:.1}",
                    s.as_secs_f64(),
                    e.as_secs_f64()
                );
            }
        }
    }
    let report = run_knn(16.0, 40, barrierless(), 42);
    println!("=== knn barrierless 16GB ===");
    println!(
        "last_map {:.1} shuffle_done {:.1} total {:.1}",
        report.last_map_done.as_secs_f64(),
        report.shuffle_done.as_secs_f64(),
        report.completion_secs()
    );
    let t = &report.timeline;
    for kind in [SpanKind::ShuffleReduce, SpanKind::Output] {
        if let Some((s, e)) = t.kind_window(kind) {
            println!(
                "  {kind:?}: {:.1} .. {:.1}",
                s.as_secs_f64(),
                e.as_secs_f64()
            );
        }
    }
    let report = run_wordcount(16.0, 40, Engine::Barrier, 42);
    println!("=== wc barrier 16GB ===");
    println!(
        "last_map {:.1} shuffle_done {:.1} total {:.1}",
        report.last_map_done.as_secs_f64(),
        report.shuffle_done.as_secs_f64(),
        report.completion_secs()
    );
    let t = &report.timeline;
    for kind in [SpanKind::SortReduce, SpanKind::Output] {
        if let Some((s, e)) = t.kind_window(kind) {
            println!(
                "  {kind:?}: {:.1} .. {:.1}",
                s.as_secs_f64(),
                e.as_secs_f64()
            );
        }
    }
}
