//! Runs every table/figure regenerator in paper order and streams their
//! combined output — the one-command reproduction of the evaluation
//! section (§6).

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir").to_path_buf();
    let bins = [
        "fig4_progress",
        "fig5_heap",
        "fig6_apps",
        "fig7_boxplot",
        "fig8_reducers",
        "fig9_memmgmt_reducers",
        "fig10_memmgmt_size",
        "fig_chain_overlap",
        "fig_speculation",
        "table1_memreq",
        "table2_loc",
    ];
    for bin in bins {
        let path = dir.join(bin);
        println!("\n{}\n# {}\n{}\n", "#".repeat(72), bin, "#".repeat(72));
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("[run_all] {bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\n[run_all] all experiments completed");
}
