//! Figure 7: box plot of the relative % improvements of the six case
//! studies (two seeds per sweep point for a fuller distribution).
//!
//! Shapes to check against the paper: Black-Scholes far ahead with the
//! widest spread, Sort slightly negative, everything else clustered in
//! the teens-to-twenties.

use mr_bench::appcfg::{barrierless, AppId};
use mr_bench::chart::{box_plot, table};
use mr_bench::stats::{improvement_pct, BoxStats};
use mr_core::Engine;

fn main() {
    println!("== Figure 7: distribution of % improvements per application ==\n");
    let mut boxes = Vec::new();
    let mut rows = Vec::new();
    let mut all_improvements = Vec::new();
    for app in AppId::ALL {
        let mut improvements = Vec::new();
        for seed in [42u64, 1337] {
            for x in app.sweep() {
                let b = app.run(x, Engine::Barrier, seed);
                let p = app.run(x, barrierless(), seed);
                improvements.push(improvement_pct(b.secs, p.secs));
            }
        }
        all_improvements.extend(improvements.iter().copied());
        let stats = BoxStats::from_values(&mut improvements);
        rows.push(vec![
            app.label().to_string(),
            format!("{:+.1}", stats.min),
            format!("{:+.1}", stats.q1),
            format!("{:+.1}", stats.median),
            format!("{:+.1}", stats.q3),
            format!("{:+.1}", stats.max),
        ]);
        boxes.push((app.label(), stats));
    }
    print!(
        "{}",
        table(&["app", "min%", "q1%", "median%", "q3%", "max%"], &rows)
    );
    println!();
    print!("{}", box_plot("% improvement by application", &boxes, 64));
    let avg = all_improvements.iter().sum::<f64>() / all_improvements.len() as f64;
    let max = all_improvements.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\noverall: average improvement {avg:+.1}% (paper: 25%), best case {max:+.1}% (paper: 87%)"
    );
}
