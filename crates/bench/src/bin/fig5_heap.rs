//! Figure 5: reducer heap usage over time for WordCount on a 16 GB
//! dataset with 10 reducers.
//!
//! (a) The in-memory TreeMap grows until it exhausts the heap and the job
//!     is killed. (b) Disk spill-and-merge (240 MB threshold) keeps the
//!     footprint bounded and the job completes.

use mr_bench::appcfg::{
    scratch, testbed, wc_costs, wc_workload, WC_HEAP_CAP, WC_HEAP_SCALE, WC_SPILL_THRESHOLD,
};
use mr_bench::chart::line_chart;
use mr_cluster::{FnInput, Outcome, SimExecutor};
use mr_core::{Engine, HashPartitioner, JobConfig, MemoryPolicy, TraceQuery};

fn run(
    policy: MemoryPolicy,
    cap: Option<u64>,
) -> mr_cluster::SimReport<mr_apps::wordcount::WordCount> {
    let w = wc_workload(42);
    let mut cfg = JobConfig::new(10)
        .engine(Engine::BarrierLess { memory: policy })
        .heap_scale(WC_HEAP_SCALE)
        .scratch_dir(scratch())
        .seed(42);
    cfg.heap_cap_bytes = cap;
    SimExecutor::new(testbed(42)).run(
        &mr_apps::wordcount::WordCount,
        &FnInput(move |c| w.chunk(c)),
        mr_bench::appcfg::chunks_for_gb(16.0),
        &cfg,
        &wc_costs(),
        &HashPartitioner,
    )
}

/// The heap samples come straight off the run's unified trace (the
/// simulator exports it for failed runs too — policy, not outcome,
/// gates tracing, and figure (a)'s whole point is the pre-kill curve).
fn busiest_reducer_series(
    report: &mr_cluster::SimReport<mr_apps::wordcount::WordCount>,
) -> (usize, Vec<(f64, f64)>) {
    let q = TraceQuery::new(&report.trace);
    let busiest = q
        .heap_samples(0)
        .into_iter()
        .max_by_key(|&(_, _, bytes)| bytes)
        .map(|(reducer, _, _)| reducer)
        .unwrap_or(0);
    let series: Vec<(f64, f64)> = q
        .heap_series(0, busiest)
        .into_iter()
        .map(|(t, b)| (t, b as f64 / (1 << 20) as f64))
        .collect();
    (busiest as usize, series)
}

fn main() {
    println!("== Figure 5: WordCount 16 GB, 10 reducers — heap over time ==\n");
    let cap_line = |len: f64| {
        vec![
            (0.0, (WC_HEAP_CAP >> 20) as f64),
            (len, (WC_HEAP_CAP >> 20) as f64),
        ]
    };

    // (a) Unbounded TreeMap under a hard heap cap: dies.
    let inmem = run(MemoryPolicy::InMemory, Some(WC_HEAP_CAP));
    let (r, series) = busiest_reducer_series(&inmem);
    let end = series.last().map(|p| p.0).unwrap_or(1.0);
    println!("--- (a) complete TreeMap in memory ---");
    print!(
        "{}",
        line_chart(
            &format!("heap of reducer {r} (MB) vs time (s)"),
            "time (s)",
            "MB",
            &[("heap used", series), ("maximum heap", cap_line(end))],
            66,
            14,
        )
    );
    match &inmem.outcome {
        Outcome::Failed { at, reason } => println!(
            "  job KILLED at {:.1}s: {reason}\n  (paper: out-of-memory error, job fails at ~80s)\n",
            at.as_secs_f64()
        ),
        other => {
            println!("  unexpected outcome {other:?} — raise input size to reproduce the OOM\n")
        }
    }

    // (b) Spill and merge at the paper's 240 MB threshold: completes.
    let spill = run(
        MemoryPolicy::SpillMerge {
            threshold_bytes: WC_SPILL_THRESHOLD,
        },
        None,
    );
    let (r, series) = busiest_reducer_series(&spill);
    let end = series.last().map(|p| p.0).unwrap_or(1.0);
    println!("--- (b) disk spill and merge (threshold 240 MB) ---");
    print!(
        "{}",
        line_chart(
            &format!("heap of reducer {r} (MB) vs time (s)"),
            "time (s)",
            "MB",
            &[("heap used", series), ("maximum heap", cap_line(end))],
            66,
            14,
        )
    );
    match &spill.outcome {
        Outcome::Completed { at } => {
            let out = spill.output.as_ref().expect("completed");
            println!(
                "  job completed at {:.1}s; spills written: {}, spill bytes: {} MB (modelled)\n  (paper: job completes successfully under the same threshold)",
                at.as_secs_f64(),
                out.counters.get(mr_core::counters::names::SPILL_FILES),
                (out.counters.get(mr_core::counters::names::SPILL_BYTES) as f64
                    * WC_HEAP_SCALE
                    / (1 << 20) as f64)
                    .round(),
            );
        }
        other => println!("  unexpected outcome {other:?}"),
    }
}
