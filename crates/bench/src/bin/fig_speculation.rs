//! `fig_speculation` — straggler mitigation on a heterogeneous cluster:
//! speculative backup attempts plus deadline-bounded approximate answers.
//!
//! The paper's simulator plays a Hadoop-style scheduler, so it can also
//! reproduce the two classic late-stage mitigations the barrier-less
//! engine composes with:
//!
//! * **Speculation** (LATE-style): when a task falls behind its peers —
//!   by progress or because its node is measurably slow — the scheduler
//!   launches one backup attempt on the fastest free node. First attempt
//!   to finish wins; the loser is cancelled. Exact-mode output must stay
//!   byte-identical, because winner resolution happens before any output
//!   is written.
//! * **Deadlines**: an SLA on top of snapshots. If the deadline fires
//!   before completion, the job answers with the latest per-reducer
//!   snapshot estimates and reports `Outcome::Approximate`.
//!
//! This figure sweeps speculation on/off across node-speed spreads and
//! both engines, asserting that the *worst-seed* (p99 stand-in) job time
//! drops under speculation at high heterogeneity while every individual
//! run's output stays byte-identical — then demonstrates the deadline
//! path and asserts the approximate answer equals the last published
//! snapshot exactly.
//!
//! Run: `cargo run --release -p mr-bench --bin fig_speculation`

use mr_bench::appcfg::{barrierless, chunks_for_gb, scratch, testbed, wc_costs, wc_workload};
use mr_bench::chart::table;
use mr_bench::stats::improvement_pct;
use mr_cluster::{FnInput, SimExecutor, SimReport, SpecEvent};
use mr_core::{
    DeadlinePolicy, Engine, HashPartitioner, JobConfig, SnapshotPolicy, SpeculationPolicy,
    TraceQuery,
};

/// Input size: 2 GB = 32 chunks — enough map waves on the 15-node
/// testbed for stragglers to matter, small enough for a CI smoke run.
const GB: f64 = 2.0;
const REDUCERS: usize = 20;
const SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// The default production-style policy: check every 5 s, call a task a
/// straggler at 1.2x its peers. Tighter slowdown thresholds would chase
/// marginal stragglers but start firing on legitimate spread (partition
/// skew, chunk locality) even on homogeneous clusters.
fn policy() -> SpeculationPolicy {
    SpeculationPolicy::enabled()
}

/// One WordCount run on the paper testbed with the given heterogeneity
/// spread and speculation policy.
fn run(
    engine: Engine,
    sigma: f64,
    noise: f64,
    seed: u64,
    spec: SpeculationPolicy,
) -> SimReport<mr_apps::WordCount> {
    let w = wc_workload(seed);
    let mut params = testbed(seed);
    params.hetero_sigma = sigma;
    params.task_noise_sigma = noise;
    params.speculation = Some(spec);
    let cfg = JobConfig::new(REDUCERS)
        .engine(engine)
        .scratch_dir(scratch())
        .seed(seed);
    SimExecutor::new(params).run(
        &mr_apps::WordCount,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(GB),
        &cfg,
        &wc_costs(),
        &HashPartitioner,
    )
}

/// Worst observation — the p99 stand-in for an 8-seed sample.
fn p99(times: &[f64]) -> f64 {
    times.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

fn sweep(engine: Engine, label: &str) {
    println!("--- {label} ---");
    let mut rows = Vec::new();
    for (sigma, noise) in [(0.0, 0.0), (0.4, 0.12), (0.8, 0.12)] {
        let (mut off, mut on) = (Vec::new(), Vec::new());
        let (mut launched, mut won, mut cancelled) = (0, 0, 0);
        for &seed in &SEEDS {
            let r_off = run(
                engine.clone(),
                sigma,
                noise,
                seed,
                SpeculationPolicy::Disabled,
            );
            let r_on = run(engine.clone(), sigma, noise, seed, policy());
            assert!(r_off.outcome.is_completed(), "{label}: baseline died");
            assert!(r_on.outcome.is_completed(), "{label}: speculative run died");
            // Byte-identical exact output, run by run: losers are
            // cancelled before they can write, so backups never change
            // the answer.
            let out_off = &r_off.output.as_ref().expect("completed").partitions;
            let out_on = &r_on.output.as_ref().expect("completed").partitions;
            assert_eq!(
                out_off, out_on,
                "{label}: speculation changed output (sigma={sigma} seed={seed})"
            );
            off.push(r_off.completion_secs());
            on.push(r_on.completion_secs());
            // Speculation marks come straight from the unified trace —
            // the timeline view above it is derived from the same log.
            let q = TraceQuery::new(&r_on.trace);
            launched += q.speculation_count(SpecEvent::Launched);
            won += q.speculation_count(SpecEvent::Won);
            cancelled += q.speculation_count(SpecEvent::Cancelled);
        }
        if sigma == 0.0 {
            // Homogeneous, noise-free: no task is a straggler, so the
            // detector must stay quiet (strict comparisons everywhere).
            assert_eq!(
                launched, 0,
                "{label}: speculation fired on a homogeneous noise-free cluster"
            );
        } else if sigma >= 0.8 {
            // The headline claim: backups cut the straggler tail.
            assert!(won > 0, "{label}: no backup ever won at sigma={sigma}");
            assert!(
                p99(&on) < p99(&off),
                "{label}: speculation did not improve worst-seed time at \
                 sigma={sigma} (off={:?} on={:?})",
                off,
                on
            );
        }
        rows.push(vec![
            format!("{sigma:.1}"),
            format!("{:.1}", p99(&off)),
            format!("{:.1}", p99(&on)),
            format!("{:+.1}%", improvement_pct(p99(&off), p99(&on))),
            format!("{launched}"),
            format!("{won}"),
            format!("{cancelled}"),
        ]);
    }
    print!(
        "{}",
        table(
            &[
                "hetero sigma",
                "p99 off (s)",
                "p99 on (s)",
                "improvement",
                "launched",
                "won",
                "cancelled"
            ],
            &rows
        )
    );
    println!();
}

/// The deadline demonstration: exact run first (to size the deadline),
/// then the same job cut off halfway, answered from snapshots.
fn deadline_demo() {
    let seed = 7;
    let w = wc_workload(seed);
    let cfg_base = || {
        JobConfig::new(REDUCERS)
            .engine(barrierless())
            .snapshots(SnapshotPolicy::EverySecs { secs: 5.0 })
            .scratch_dir(scratch())
            .seed(seed)
    };
    let exact = SimExecutor::new(testbed(seed)).run(
        &mr_apps::WordCount,
        &FnInput({
            let w = w.clone();
            move |c| w.chunk(c)
        }),
        chunks_for_gb(GB),
        &cfg_base(),
        &wc_costs(),
        &HashPartitioner,
    );
    assert!(exact.outcome.is_completed());
    let full = exact.completion_secs();
    let at = full * 0.5;

    let cut = SimExecutor::new(testbed(seed)).run(
        &mr_apps::WordCount,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(GB),
        &cfg_base().deadline(DeadlinePolicy::At { secs: at }),
        &wc_costs(),
        &HashPartitioner,
    );
    assert!(
        cut.outcome.is_approximate(),
        "deadline at {at:.1}s of a {full:.1}s job should cut it short, got {:?}",
        cut.outcome
    );
    let out = cut.output.as_ref().expect("approximate runs carry output");
    // The approximate answer IS the latest published snapshot, verbatim:
    // partition p equals the estimate of p's highest-seq snapshot (empty
    // when p never published).
    let mut estimated_records = 0usize;
    for (p, partition) in out.partitions.iter().enumerate() {
        let last = out.snapshots[p].last();
        let expect: &[(String, u64)] = last.map_or(&[], |s| &s.estimate);
        assert_eq!(
            partition.as_slice(),
            expect,
            "partition {p}: approximate answer is not the last snapshot"
        );
        estimated_records += partition.len();
    }
    assert!(
        estimated_records > 0,
        "deadline answer was empty — snapshots never published before {at:.1}s"
    );
    println!("--- deadline-bounded approximate answer (barrier-less WordCount) ---");
    println!("  exact completion: {full:.1}s; deadline: {at:.1}s (50%)");
    println!(
        "  outcome: Approximate with {estimated_records} records across {} partitions,",
        out.partitions.len()
    );
    println!("  each partition byte-equal to its reducer's last published snapshot");
}

fn main() {
    println!("== fig_speculation: straggler mitigation via speculative backups ==");
    println!(
        "   (WordCount {GB:.0} GB, {REDUCERS} reducers, paper testbed, {} seeds;",
        SEEDS.len()
    );
    println!("    p99 = worst seed; speculation checks every 5 s at 1.2x slowdown)\n");
    sweep(Engine::Barrier, "barrier engine");
    sweep(barrierless(), "barrier-less engine");
    deadline_demo();
    println!(
        "\nSpeculation never fires on a homogeneous quiet cluster, never changes\n\
         exact output, and cuts the worst-seed completion time once node speeds\n\
         spread; past the deadline, the job degrades to its freshest estimate."
    );
}
