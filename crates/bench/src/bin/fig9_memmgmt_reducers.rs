//! Figure 9: WordCount (16 GB) under the four memory-management
//! techniques, with the number of reducers varying.
//!
//! The paper's observations to reproduce: the KV store is the slowest
//! everywhere (it "can not keep up with the high frequency of record
//! accesses"); spill-and-merge runs slightly behind in-memory but keeps
//! working where in-memory reducers run out of heap (below ~25 reducers,
//! marked `FAIL`); both barrier-less techniques beat the barrier.

use mr_bench::appcfg::{run_wc_technique, MemTechnique};
use mr_bench::chart::{line_chart, table};

fn main() {
    let gb = 16.0;
    println!("== Figure 9: WordCount {gb} GB — memory techniques vs reducer count ==\n");
    let reducer_counts = [5usize, 10, 15, 20, 25, 35, 50, 70];
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = MemTechnique::ALL
        .iter()
        .map(|t| (t.label(), Vec::new()))
        .collect();
    let mut rows = Vec::new();
    for &r in &reducer_counts {
        let mut row = vec![r.to_string()];
        for (i, &t) in MemTechnique::ALL.iter().enumerate() {
            let s = run_wc_technique(gb, r, t);
            if s.failed {
                row.push("FAIL (OOM)".to_string());
            } else {
                row.push(format!("{:.1}", s.secs));
                series[i].1.push((r as f64, s.secs));
            }
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("reducers")
        .chain(MemTechnique::ALL.iter().map(|t| t.label()))
        .collect();
    print!("{}", table(&headers, &rows));
    println!();
    print!(
        "{}",
        line_chart(
            "WordCount completion (s) vs number of reducers",
            "reducers",
            "time (s)",
            &series,
            64,
            16,
        )
    );
}
