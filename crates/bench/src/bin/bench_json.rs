//! `bench_json` — machine-readable perf smoke harness for CI.
//!
//! Runs the repo's hot paths in quick mode (criterion's full statistics
//! are overkill for a CI gate; this reports best-of-N wall clock) and
//! writes `BENCH_<pr>.json` so every PR leaves a perf trajectory behind.
//! The committed file at the repo root is the baseline future PRs diff
//! against; CI re-generates it and uploads the result as an artifact.
//!
//! Format (one JSON object; see README "Benchmark JSON format"):
//!
//! ```json
//! {
//!   "schema": "mr-bench-json/v1",
//!   "mode": "quick-best-of-3",
//!   "benches": [
//!     {"name": "...", "wall_ms": 12.3, "records": 48000, "records_per_sec": 3.9e6}
//!   ]
//! }
//! ```
//!
//! Usage: `cargo run --release -p mr-bench --bin bench_json [out.json]`

use mr_apps::sort::RangePartitioner;
use mr_bench::appcfg::{
    chunks_for_gb, run_wordcount_snapshotted, run_wordcount_with_combiner, testbed, wc_costs,
    wc_workload,
};
use mr_cluster::{ChainSimExecutor, FnInput, SimExecutor, SpecEvent};
use mr_core::counters::names;
use mr_core::engine::pipeline::{
    reduce_partition_barrierless, reduce_partition_barrierless_traced,
};
use mr_core::local::LocalRunner;
use mr_core::{
    serve, CacheBudget, ChainSpec, CombinerBuffer, CombinerPolicy, Counters, DeadlinePolicy,
    Engine, HandoffMode, HashPartitioner, JobConfig, MemoryPolicy, ServiceConfig, SharedCache,
    SnapshotPolicy, SpeculationPolicy, StoreIndex, TracePolicy,
};
use mr_workloads::TextWorkload;
use std::time::Instant;

const ITERS: usize = 3;

struct BenchResult {
    name: &'static str,
    wall_ms: f64,
    records: u64,
    /// Result-cache hit rate over the measured path (cache benches
    /// only); emitted as a `hit_rate` field in the JSON when present.
    hit_rate: Option<f64>,
}

impl BenchResult {
    fn records_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.records as f64 / (self.wall_ms / 1e3)
        }
    }
}

/// Best-of-N wall clock for `f`, which returns the record count that
/// crossed the measured path.
fn bench(name: &'static str, mut f: impl FnMut() -> u64) -> BenchResult {
    let mut best = f64::INFINITY;
    let mut records = 0;
    for _ in 0..ITERS {
        let start = Instant::now();
        records = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    BenchResult {
        name,
        wall_ms: best,
        records,
        hit_rate: None,
    }
}

fn wc_splits(chunks: u64) -> Vec<Vec<(u64, String)>> {
    let w = TextWorkload {
        seed: 7,
        vocab: 2_000,
        zipf_s: 1.0,
        lines_per_chunk: 400,
        words_per_line: 8,
    };
    (0..chunks).map(|c| w.chunk(c)).collect()
}

fn local_cfg(engine: Engine, combiner: CombinerPolicy) -> JobConfig {
    JobConfig::new(4)
        .engine(engine)
        .combiner(combiner)
        .scratch_dir(std::env::temp_dir().join(format!("mr-bench-json-{}", std::process::id())))
}

fn barrierless() -> Engine {
    Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    }
}

/// Config shared by the many-jobs pool bench and its thread-per-task
/// baseline: 2 reducers, 4 pool workers, barrier-less in-memory engine.
fn many_jobs_cfg() -> JobConfig {
    JobConfig::new(2)
        .engine(barrierless())
        .pool_workers(4)
        .scratch_dir(std::env::temp_dir().join(format!("mr-bench-json-{}", std::process::id())))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let splits = wc_splits(12);
    let mut results = Vec::new();

    // End-to-end local executor, both engines: the macro numbers.
    results.push(bench("local_wordcount_barrier", || {
        let out = LocalRunner::new(4)
            .run(
                &mr_apps::WordCount,
                splits.clone(),
                &local_cfg(Engine::Barrier, CombinerPolicy::Disabled),
            )
            .expect("barrier run");
        out.counters.get(names::MAP_OUTPUT_RECORDS)
    }));

    // The same job pinned to a 4-thread worker pool: the single-job
    // cost of running task state machines instead of thread-per-task.
    results.push(bench("local_wordcount_pool", || {
        let cfg = local_cfg(barrierless(), CombinerPolicy::Disabled).pool_workers(4);
        let out = LocalRunner::new(4)
            .run(&mr_apps::WordCount, splits.clone(), &cfg)
            .expect("pooled run");
        out.counters.get(names::MAP_OUTPUT_RECORDS)
    }));

    // The pool runtime's headline: 256 small jobs multiplexed onto one
    // 4-worker pool, against a thread-per-task-style baseline (each job
    // run alone with a pool wide enough to give every task its own
    // thread, jobs back to back — the pre-pool runtime's costs
    // reproduced on today's API). records/sec is total map-output
    // records across the batch.
    let many_jobs_inputs: Vec<Vec<Vec<(u64, String)>>> = (0..256u64)
        .map(|j| {
            let w = TextWorkload {
                seed: j,
                vocab: 200,
                zipf_s: 1.0,
                lines_per_chunk: 10,
                words_per_line: 6,
            };
            (0..2).map(|c| w.chunk(c)).collect()
        })
        .collect();
    {
        let jobs = many_jobs_inputs.clone();
        results.push(bench("local_many_jobs_pool", move || {
            let cfg = many_jobs_cfg();
            let batch = LocalRunner::new(2)
                .run_many(&mr_apps::WordCount, jobs.clone(), &cfg, &HashPartitioner)
                .expect("batch");
            batch
                .jobs
                .iter()
                .map(|j| {
                    j.as_ref()
                        .expect("job")
                        .counters
                        .get(names::MAP_OUTPUT_RECORDS)
                })
                .sum()
        }));
    }
    {
        let jobs = many_jobs_inputs.clone();
        results.push(bench("local_many_jobs_thread_per_task", move || {
            let mut total = 0;
            for job in &jobs {
                let cfg = many_jobs_cfg();
                let out = LocalRunner::new(2)
                    .run(&mr_apps::WordCount, job.clone(), &cfg)
                    .expect("job");
                total += out.counters.get(names::MAP_OUTPUT_RECORDS);
            }
            total
        }));
    }

    // The service layer's headline: the same 256 jobs, now from 4
    // tenants through one long-lived `serve` pool (admission + fair
    // scheduling in the submit path), against running them as 4
    // per-tenant `run_many` batches that each spin up and tear down
    // their own pool. The gap tracks what the admission/fair-pick
    // machinery costs — and what the batch baseline pays in repeated
    // pool setup and lost cross-batch overlap.
    {
        let jobs = many_jobs_inputs.clone();
        results.push(bench("job_service_contended", move || {
            let svc_cfg = ServiceConfig::new(4).pool_workers(4);
            let (total, report) = serve(
                &mr_apps::WordCount,
                &HashPartitioner,
                &svc_cfg,
                |svc| -> u64 {
                    let handles: Vec<_> = jobs
                        .iter()
                        .enumerate()
                        .map(|(j, splits)| {
                            svc.submit(j % 4, splits.clone(), &many_jobs_cfg())
                                .expect("admission")
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.wait()
                                .expect("job")
                                .counters
                                .get(names::MAP_OUTPUT_RECORDS)
                        })
                        .sum()
                },
            )
            .expect("service run");
            assert_eq!(report.completed, 256);
            total
        }));
    }
    {
        let jobs = many_jobs_inputs;
        results.push(bench("job_service_per_batch_pools", move || {
            let mut total = 0;
            for tenant in 0..4usize {
                let batch: Vec<_> = jobs.iter().skip(tenant).step_by(4).cloned().collect();
                let out = LocalRunner::new(2)
                    .run_many(
                        &mr_apps::WordCount,
                        batch,
                        &many_jobs_cfg(),
                        &HashPartitioner,
                    )
                    .expect("batch");
                total += out
                    .jobs
                    .iter()
                    .map(|j| {
                        j.as_ref()
                            .expect("job")
                            .counters
                            .get(names::MAP_OUTPUT_RECORDS)
                    })
                    .sum::<u64>();
            }
            total
        }));
    }

    // The shuffle hot path: batched transport, records/sec is the
    // headline number the batching work moves.
    results.push(bench("shuffle_batched_barrierless", || {
        let out = LocalRunner::new(4)
            .run(
                &mr_apps::WordCount,
                splits.clone(),
                &local_cfg(barrierless(), CombinerPolicy::Disabled),
            )
            .expect("barrierless run");
        out.counters.get(names::SHUFFLE_RECORDS)
    }));

    // Same path with map-side combining: fewer records cross, so
    // records/sec here is map-output records absorbed per second.
    results.push(bench("shuffle_combined_barrierless", || {
        let out = LocalRunner::new(4)
            .run(
                &mr_apps::WordCount,
                splits.clone(),
                &local_cfg(barrierless(), CombinerPolicy::enabled()),
            )
            .expect("combined run");
        out.counters.get(names::COMBINE_INPUT_RECORDS)
    }));

    // The combiner fold in isolation (no threads, no channels). Runs
    // the default (hashed) index; `combiner_buffer_fold_ordered` below
    // is the same fold on the paper's ordered map.
    results.push(bench("combiner_buffer_fold", || {
        let mut buf = CombinerBuffer::new(&mr_apps::WordCount, 1 << 20, StoreIndex::Hashed);
        let mut sunk = 0u64;
        let mut n = 0u64;
        for split in &splits {
            for (_, line) in split {
                for word in line.split_whitespace() {
                    n += 1;
                    buf.push(&mr_apps::WordCount, word.to_string(), 1, &mut |_, _| {
                        sunk += 1
                    });
                }
            }
        }
        buf.drain(&mr_apps::WordCount, &mut |_, _| sunk += 1);
        assert!(sunk > 0);
        n
    }));

    // The same fold on the ordered index: the A/B partner of
    // `combiner_buffer_fold` (the tentpole's ablation, in CI form).
    results.push(bench("combiner_buffer_fold_ordered", || {
        let mut buf = CombinerBuffer::new(&mr_apps::WordCount, 1 << 20, StoreIndex::Ordered);
        let mut sunk = 0u64;
        let mut n = 0u64;
        for split in &splits {
            for (_, line) in split {
                for word in line.split_whitespace() {
                    n += 1;
                    buf.push(&mr_apps::WordCount, word.to_string(), 1, &mut |_, _| {
                        sunk += 1
                    });
                }
            }
        }
        buf.drain(&mr_apps::WordCount, &mut |_, _| sunk += 1);
        assert!(sunk > 0);
        n
    }));

    // The reduce-side absorb hot path in isolation: one partition's
    // record stream through the in-memory store, ordered vs hashed.
    let absorb_records: Vec<(String, u64)> = splits
        .iter()
        .flat_map(|split| split.iter())
        .flat_map(|(_, line)| line.split_whitespace().map(|w| (w.to_string(), 1u64)))
        .collect();
    for (name, index) in [
        ("store_absorb_ordered", StoreIndex::Ordered),
        ("store_absorb_hashed", StoreIndex::Hashed),
    ] {
        // One pre-cloned input per timed iteration, so the clone cost
        // (tens of thousands of short strings) stays outside the clock.
        let n = absorb_records.len() as u64;
        let mut inputs: Vec<Vec<(String, u64)>> =
            (0..ITERS).map(|_| absorb_records.clone()).collect();
        results.push(bench(name, move || {
            let records = inputs.pop().expect("one input per iteration");
            let cfg = local_cfg(barrierless(), CombinerPolicy::Disabled).store_index(index);
            let (out, _) = reduce_partition_barrierless(
                &mr_apps::WordCount,
                &cfg,
                0,
                records,
                &mut Counters::new(),
            )
            .expect("absorb run");
            assert!(!out.is_empty());
            n
        }));
    }

    // Same stream through the spill store (hashed): absorb + the
    // sort-at-spill path the amortized drain moved the ordering cost to.
    {
        let n = absorb_records.len() as u64;
        let mut inputs: Vec<Vec<(String, u64)>> =
            (0..ITERS).map(|_| absorb_records.clone()).collect();
        results.push(bench("spill_store_absorb", move || {
            let records = inputs.pop().expect("one input per iteration");
            let cfg = local_cfg(
                Engine::BarrierLess {
                    memory: MemoryPolicy::SpillMerge {
                        threshold_bytes: 64 << 10,
                    },
                },
                CombinerPolicy::Disabled,
            );
            let (out, report) = reduce_partition_barrierless(
                &mr_apps::WordCount,
                &cfg,
                0,
                records,
                &mut Counters::new(),
            )
            .expect("spill run");
            assert!(!out.is_empty());
            assert!(report.store.spill_files > 0, "threshold never tripped");
            n
        }));
    }

    // The snapshot subsystem on the real executor: periodic frozen-view
    // walks while absorbing. records/sec is map-output records absorbed
    // per second *with observation on* — the overhead the snapshot
    // tentpole must keep small.
    results.push(bench("snapshot_periodic_barrierless", || {
        let cfg = local_cfg(barrierless(), CombinerPolicy::Disabled)
            .snapshots(SnapshotPolicy::EveryRecords { records: 2048 });
        let out = LocalRunner::new(4)
            .run(&mr_apps::WordCount, splits.clone(), &cfg)
            .expect("snapshotted run");
        assert!(out.counters.get(names::SNAPSHOT_COUNT) > 0);
        out.counters.get(names::MAP_OUTPUT_RECORDS)
    }));

    // The snapshot walk in isolation (one partition, no threads): the
    // absorb stream with a snapshot every 8192 records.
    {
        let n = absorb_records.len() as u64;
        let mut inputs: Vec<Vec<(String, u64)>> =
            (0..ITERS).map(|_| absorb_records.clone()).collect();
        results.push(bench("snapshot_store_walk", move || {
            let records = inputs.pop().expect("one input per iteration");
            let cfg = local_cfg(barrierless(), CombinerPolicy::Disabled)
                .snapshots(SnapshotPolicy::EveryRecords { records: 8192 });
            let (out, _, snaps) = reduce_partition_barrierless_traced(
                &mr_apps::WordCount,
                &cfg,
                0,
                records,
                &mut Counters::new(),
            )
            .expect("snapshot walk run");
            assert!(!out.is_empty());
            assert!(snaps.len() > 1, "interval never tripped");
            n
        }));
    }

    // Snapshots under the simulator: ticks scheduled as timeline events,
    // charged via snapshot_cpu_per_record.
    results.push(bench("sim_wordcount_1gb_snapshotted", || {
        let report = run_wordcount_snapshotted(
            1.0,
            8,
            barrierless(),
            7,
            SnapshotPolicy::EverySecs { secs: 30.0 },
        );
        assert!(report.outcome.is_completed());
        assert!(report.snapshots_taken > 0);
        report
            .output
            .expect("completed")
            .counters
            .get(names::MAP_OUTPUT_RECORDS)
    }));

    // The chain subsystem on the real executor: grep → sort with the
    // streamed handoff (the tentpole path: reducer emit → bounded
    // channels → downstream map intake) vs the materialize-and-rerun
    // baseline. records/sec is matched records crossing the chain edge.
    let log_splits: Vec<Vec<(u64, String)>> = (0..8)
        .map(|chunk| {
            (0..2_000u64)
                .map(|line| {
                    let ts = chunk * 100_000 + line;
                    let text = if ts % 3 == 0 {
                        format!("ts={ts} level=error svc=db disk wobbled badly")
                    } else {
                        format!("ts={ts} level=info all good here today")
                    };
                    (ts, text)
                })
                .collect()
        })
        .collect();
    for (name, handoff) in [
        ("chain_grep_sort_streaming", HandoffMode::Streaming),
        ("chain_grep_sort_barrier", HandoffMode::Barrier),
    ] {
        let splits = log_splits.clone();
        results.push(bench(name, move || {
            let spec = ChainSpec::new(vec![
                JobConfig::new(4).engine(Engine::barrierless()),
                JobConfig::new(4).engine(Engine::barrierless()),
            ])
            .handoff(handoff);
            let out = LocalRunner::new(4)
                .run_chain2(
                    &mr_apps::Grep::new("level=error"),
                    &mr_apps::Sort,
                    splits.clone(),
                    &spec,
                    &HashPartitioner,
                    &RangePartitioner::uniform(4),
                )
                .expect("chain run");
            assert!(out.output.record_count() > 0);
            out.handoff_records()
        }));
    }

    // The chain in the simulator: streaming handoff edges scheduled as
    // timeline events, charged via the chain_* cost fields.
    results.push(bench("chain_sim_wordcount_topk", || {
        let w = wc_workload(7);
        let spec = ChainSpec::new(vec![
            JobConfig::new(8).engine(Engine::barrierless()),
            JobConfig::new(2).engine(Engine::barrierless()),
        ])
        .handoff(HandoffMode::Streaming);
        let report = ChainSimExecutor::new(testbed(7)).run_chain2(
            &mr_apps::WordCount,
            &mr_apps::TopK::new(20),
            &FnInput(move |c| w.chunk(c)),
            16,
            &spec,
            &mr_bench::appcfg::wc_costs(),
            &HashPartitioner,
            &HashPartitioner,
        );
        assert!(report.outcome.is_completed());
        assert!(report.overlapped(), "streaming chain must overlap stages");
        report
            .output
            .expect("completed")
            .counters
            .get(names::MAP_OUTPUT_RECORDS)
    }));

    // Straggler mitigation under the simulator: the same heterogeneous
    // setup fig_speculation asserts on, in CI-trajectory form. The
    // off/on pair shares seed and spread, so the wall_ms gap tracks the
    // event-loop cost of the detector plus the backup attempts it runs.
    let spec_run = |spec: SpeculationPolicy| {
        let w = wc_workload(9);
        let mut params = testbed(9);
        params.hetero_sigma = 0.8;
        params.speculation = Some(spec);
        let cfg = JobConfig::new(8)
            .engine(barrierless())
            .scratch_dir(std::env::temp_dir().join(format!("mr-bench-json-{}", std::process::id())))
            .seed(9);
        SimExecutor::new(params).run(
            &mr_apps::WordCount,
            &FnInput(move |c| w.chunk(c)),
            chunks_for_gb(1.0),
            &cfg,
            &wc_costs(),
            &HashPartitioner,
        )
    };
    results.push(bench("sim_hetero_speculation_off", || {
        let report = spec_run(SpeculationPolicy::Disabled);
        assert!(report.outcome.is_completed());
        report
            .output
            .expect("completed")
            .counters
            .get(names::MAP_OUTPUT_RECORDS)
    }));
    results.push(bench("sim_hetero_speculation_on", || {
        let report = spec_run(SpeculationPolicy::enabled());
        assert!(report.outcome.is_completed());
        assert!(
            report.timeline.speculation_count(SpecEvent::Launched) > 0,
            "speculation never fired on a 0.8-sigma cluster"
        );
        report
            .output
            .expect("completed")
            .counters
            .get(names::MAP_OUTPUT_RECORDS)
    }));

    // The deadline path: a snapshotted run cut off mid-flight must
    // finalize from the latest snapshots and report Approximate. The
    // 2 GB job completes around 78 s on this testbed, so a 40 s
    // deadline lands mid-reduce with several snapshot rounds published.
    results.push(bench("sim_deadline_approximate", || {
        let w = wc_workload(7);
        let cfg = JobConfig::new(8)
            .engine(barrierless())
            .snapshots(SnapshotPolicy::EverySecs { secs: 5.0 })
            .deadline(DeadlinePolicy::At { secs: 40.0 })
            .scratch_dir(std::env::temp_dir().join(format!("mr-bench-json-{}", std::process::id())))
            .seed(7);
        let report = SimExecutor::new(testbed(7)).run(
            &mr_apps::WordCount,
            &FnInput(move |c| w.chunk(c)),
            chunks_for_gb(2.0),
            &cfg,
            &wc_costs(),
            &HashPartitioner,
        );
        assert!(
            report.outcome.is_approximate(),
            "40 s deadline did not cut the job short"
        );
        let out = report.output.expect("approximate runs carry output");
        assert!(out.record_count() > 0, "deadline answer was empty");
        out.counters.get(names::MAP_OUTPUT_RECORDS)
    }));

    // The trace pipeline's record-path cost: the same barrier-less
    // local run with tracing on vs off, best-of-N each; wall_ms is the
    // on-minus-off gap, clamped at zero (when recording is cheap the
    // difference sits inside run-to-run noise). Tracing must be pure
    // observation: both runs' partitions are asserted byte-identical.
    {
        let traced_run = |policy: TracePolicy| {
            LocalRunner::new(4)
                .run(
                    &mr_apps::WordCount,
                    splits.clone(),
                    &local_cfg(barrierless(), CombinerPolicy::Disabled).trace(policy),
                )
                .expect("traced run")
        };
        let baseline = traced_run(TracePolicy::Disabled);
        assert!(baseline.trace.is_empty(), "disabled run recorded events");
        let on = bench("trace_on", || {
            let out = traced_run(TracePolicy::Enabled);
            assert!(!out.trace.is_empty(), "enabled run recorded nothing");
            assert_eq!(
                out.partitions, baseline.partitions,
                "tracing changed the job output"
            );
            out.counters.get(names::MAP_OUTPUT_RECORDS)
        });
        let off = bench("trace_off", || {
            traced_run(TracePolicy::Disabled)
                .counters
                .get(names::MAP_OUTPUT_RECORDS)
        });
        results.push(BenchResult {
            name: "trace_record_overhead",
            wall_ms: (on.wall_ms - off.wall_ms).max(0.0),
            records: on.records,
            hit_rate: None,
        });
    }

    // The shared result cache: the cross-job memoization headline.
    // cache_cold starts from an empty cache every iteration (all misses,
    // every artifact published); cache_warm re-runs the same job against
    // a warmed cache (a whole-job hit — the map and reduce work the
    // cache saves); cache_warm_evicting cycles more distinct jobs than a
    // tight budget holds, with one hot job re-run between the others, so
    // hits are partial while the LRU churns.
    {
        let cache_cfg =
            local_cfg(barrierless(), CombinerPolicy::Disabled).cache(CacheBudget::enabled());
        let (cfg, splits2) = (cache_cfg.clone(), splits.clone());
        let mut cold = bench("cache_cold", move || {
            let cache = SharedCache::new(64 << 20);
            let out = LocalRunner::new(4)
                .run_cached(
                    &mr_apps::WordCount,
                    splits2.clone(),
                    &cfg,
                    &HashPartitioner,
                    &cache,
                )
                .expect("cold cached run");
            assert_eq!(out.counters.get(names::CACHE_HITS), 0);
            assert!(out.counters.get(names::CACHE_MISSES) > 0);
            out.counters.get(names::MAP_OUTPUT_RECORDS)
        });
        cold.hit_rate = Some(0.0);
        let cold_records = cold.records;
        results.push(cold);

        let warm_cache = SharedCache::new(64 << 20);
        LocalRunner::new(4)
            .run_cached(
                &mr_apps::WordCount,
                splits.clone(),
                &cache_cfg,
                &HashPartitioner,
                &warm_cache,
            )
            .expect("warm-up run");
        let (cfg, splits2) = (cache_cfg.clone(), splits.clone());
        let mut warm = bench("cache_warm", move || {
            let out = LocalRunner::new(4)
                .run_cached(
                    &mr_apps::WordCount,
                    splits2.clone(),
                    &cfg,
                    &HashPartitioner,
                    &warm_cache,
                )
                .expect("warm cached run");
            assert!(out.counters.get(names::CACHE_HITS) >= 1);
            assert_eq!(out.counters.get(names::CACHE_MISSES), 0);
            // records/sec reports the map work the hit *avoided*, so the
            // cold/warm pair is comparable on both axes.
            cold_records
        });
        warm.hit_rate = Some(1.0);
        results.push(warm);

        // Five distinct jobs, job 0 re-run between each of the others; a
        // budget of ~3 jobs' artifacts keeps job 0 hot while 1..=4 churn.
        let jobs: Vec<Vec<Vec<(u64, String)>>> = (0..5u64)
            .map(|j| {
                let w = TextWorkload {
                    seed: 100 + j,
                    vocab: 2_000,
                    zipf_s: 1.0,
                    lines_per_chunk: 400,
                    words_per_line: 8,
                };
                (0..4).map(|c| w.chunk(c)).collect()
            })
            .collect();
        let probe = SharedCache::new(1 << 30);
        LocalRunner::new(4)
            .run_cached(
                &mr_apps::WordCount,
                jobs[0].clone(),
                &cache_cfg,
                &HashPartitioner,
                &probe,
            )
            .expect("probe run");
        let evicting = SharedCache::new(probe.used_bytes() * 3);
        let observed = std::rc::Rc::new(std::cell::Cell::new(0.0f64));
        {
            let (cfg, cache, rate) = (cache_cfg.clone(), evicting.clone(), observed.clone());
            let mut r = bench("cache_warm_evicting", move || {
                let (mut hits, mut misses, mut records) = (0u64, 0u64, 0u64);
                for &j in &[0usize, 1, 0, 2, 0, 3, 0, 4] {
                    let out = LocalRunner::new(4)
                        .run_cached(
                            &mr_apps::WordCount,
                            jobs[j].clone(),
                            &cfg,
                            &HashPartitioner,
                            &cache,
                        )
                        .expect("evicting cached run");
                    hits += out.counters.get(names::CACHE_HITS);
                    misses += out.counters.get(names::CACHE_MISSES);
                    records += out.counters.get(names::MAP_OUTPUT_RECORDS);
                }
                rate.set(hits as f64 / (hits + misses) as f64);
                records
            });
            r.hit_rate = Some(observed.get());
            results.push(r);
        }
        let stats = evicting.stats();
        assert!(stats.hits > 0, "hot job never hit under eviction pressure");
        assert!(stats.evictions > 0, "budget never churned");
    }

    // One small simulated-cluster run: catches event-loop regressions.
    results.push(bench("sim_wordcount_1gb_combined", || {
        let report =
            run_wordcount_with_combiner(1.0, 8, barrierless(), 7, CombinerPolicy::enabled());
        assert!(report.outcome.is_completed());
        report
            .output
            .expect("completed")
            .counters
            .get(names::MAP_OUTPUT_RECORDS)
    }));

    // ------------------------------------------------------- emit JSON
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"mr-bench-json/v1\",\n");
    json.push_str(&format!("  \"mode\": \"quick-best-of-{ITERS}\",\n"));
    json.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let hit_rate = r
            .hit_rate
            .map(|h| format!(", \"hit_rate\": {h:.3}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"records\": {}, \"records_per_sec\": {:.0}{}}}{}\n",
            r.name,
            r.wall_ms,
            r.records,
            r.records_per_sec(),
            hit_rate,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");

    println!("wrote {out_path}");
    for r in &results {
        println!(
            "  {:<32} {:>10.1} ms  {:>12.0} records/s",
            r.name,
            r.wall_ms,
            r.records_per_sec()
        );
    }
}
