//! Table 2: programmer effort — lines of code of the original vs the
//! barrier-less reduce-side logic, counted from this repository's actual
//! application sources.
//!
//! Each multi-file app keeps its original reduce logic in `original.rs`
//! and the barrier-less rewrite in `barrierless.rs`; the genetic
//! algorithm and Black-Scholes are single files because the paper found
//! they require **no** code change (0%).

use mr_bench::chart::table;

/// Code lines: non-empty, non-comment.
fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

fn main() {
    println!("== Table 2: programmer effort (reduce-side lines of code) ==\n");
    let apps: Vec<(&str, usize, usize, &str)> = vec![
        (
            "Sort",
            loc(include_str!("../../../apps/src/sort/original.rs")),
            loc(include_str!("../../../apps/src/sort/barrierless.rs")),
            "+240%",
        ),
        (
            "WordCount",
            loc(include_str!("../../../apps/src/wordcount/original.rs")),
            loc(include_str!("../../../apps/src/wordcount/barrierless.rs")),
            "+20%",
        ),
        (
            "k-Nearest Neighbors",
            loc(include_str!("../../../apps/src/knn/original.rs")),
            loc(include_str!("../../../apps/src/knn/barrierless.rs")),
            "+10%",
        ),
        (
            "Post Processing",
            loc(include_str!("../../../apps/src/lastfm/original.rs")),
            loc(include_str!("../../../apps/src/lastfm/barrierless.rs")),
            "+25%",
        ),
        (
            "Genetic Algorithm",
            loc(include_str!("../../../apps/src/ga.rs")),
            loc(include_str!("../../../apps/src/ga.rs")),
            "0%",
        ),
        (
            "Black-Scholes",
            loc(include_str!("../../../apps/src/blackscholes.rs")),
            loc(include_str!("../../../apps/src/blackscholes.rs")),
            "0%",
        ),
    ];
    let rows: Vec<Vec<String>> = apps
        .iter()
        .map(|(name, orig, bl, paper)| {
            let increase = if orig == bl {
                "0%".to_string()
            } else {
                format!(
                    "{:+.0}%",
                    (*bl as f64 - *orig as f64) / *orig as f64 * 100.0
                )
            };
            vec![
                name.to_string(),
                orig.to_string(),
                bl.to_string(),
                increase,
                paper.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "Application",
                "original LoC",
                "barrier-less LoC",
                "increase",
                "paper"
            ],
            &rows
        )
    );
    println!("\n(the GA and Black-Scholes rows are single shared files: converting them");
    println!(" really is just flipping the engine flag, as the paper reports)");
}
