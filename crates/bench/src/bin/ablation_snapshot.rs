//! Ablation: snapshot policy × engine — what does observation cost?
//!
//! Snapshots are pure observation, so two things must hold at every
//! point of this sweep: the final output is byte-identical to the
//! snapshot-free run, and the only visible difference is time (wall
//! time on the real executor; charged virtual time in the simulator via
//! `CostModel::snapshot_cpu_per_record`). Three sections: the real
//! threaded executor under increasingly aggressive record-driven
//! policies, the spill store (whose snapshots must re-read run files to
//! stay self-consistent), and one simulated-cluster A/B.
//!
//! Run: `cargo run --release -p mr-bench --bin ablation_snapshot`

use mr_bench::appcfg::run_wordcount_snapshotted;
use mr_bench::chart::table;
use mr_core::counters::names;
use mr_core::local::LocalRunner;
use mr_core::{Engine, JobConfig, MemoryPolicy, SnapshotPolicy};
use mr_workloads::TextWorkload;
use std::time::Instant;

fn barrierless() -> Engine {
    Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    }
}

fn scratch() -> std::path::PathBuf {
    mr_bench::appcfg::scratch()
}

/// Best-of-3 wall milliseconds.
fn best_of_3(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    println!("== Ablation: snapshot policy x engine (WordCount) ==\n");
    let w = TextWorkload {
        seed: 42,
        vocab: 2_000,
        zipf_s: 1.0,
        lines_per_chunk: 400,
        words_per_line: 8,
    };
    let splits: Vec<Vec<(u64, String)>> = (0..16).map(|c| w.chunk(c)).collect();

    // ----------------------------------------- real threaded executor
    println!("--- real threaded executor (LocalRunner, 16 chunks, barrier-less) ---");
    let policies: [(&str, SnapshotPolicy); 4] = [
        ("disabled", SnapshotPolicy::Disabled),
        (
            "every 8192 rec",
            SnapshotPolicy::EveryRecords { records: 8192 },
        ),
        (
            "every 1024 rec",
            SnapshotPolicy::EveryRecords { records: 1024 },
        ),
        (
            "every 128 rec",
            SnapshotPolicy::EveryRecords { records: 128 },
        ),
    ];
    let mut rows = Vec::new();
    let mut baseline_ms = f64::NAN;
    let mut baseline_out = None;
    for (label, policy) in policies {
        let cfg = JobConfig::new(8)
            .engine(barrierless())
            .snapshots(policy)
            .scratch_dir(scratch());
        let wall_ms = best_of_3(|| {
            LocalRunner::new(4)
                .run(&mr_apps::WordCount, splits.clone(), &cfg)
                .expect("local run");
        });
        let out = LocalRunner::new(4)
            .run(&mr_apps::WordCount, splits.clone(), &cfg)
            .expect("local run");
        let snaps = out.counters.get(names::SNAPSHOT_COUNT);
        let snap_records = out.counters.get(names::SNAPSHOT_RECORDS);
        let overhead = if baseline_ms.is_nan() {
            baseline_ms = wall_ms;
            "-".to_string()
        } else {
            format!("{:+.0}%", 100.0 * (wall_ms / baseline_ms - 1.0))
        };
        rows.push(vec![
            label.to_string(),
            format!("{wall_ms:.1}"),
            snaps.to_string(),
            snap_records.to_string(),
            overhead,
        ]);
        let sorted = out.into_sorted_output();
        match &baseline_out {
            None => baseline_out = Some(sorted),
            Some(reference) => assert_eq!(
                reference, &sorted,
                "snapshot policy {label} changed the final output"
            ),
        }
    }
    print!(
        "{}",
        table(
            &["policy", "wall (ms)", "snapshots", "est. records", "vs off"],
            &rows
        )
    );
    println!("\n(byte-exact final output at every row)\n");

    // ------------------------------------------------- the spill store
    println!("--- spill store (threshold 16 KiB): snapshots merge run files ---");
    let mut rows = Vec::new();
    let mut spill_outputs = Vec::new();
    for (label, policy) in [
        ("disabled", SnapshotPolicy::Disabled),
        (
            "every 4096 rec",
            SnapshotPolicy::EveryRecords { records: 4096 },
        ),
    ] {
        let cfg = JobConfig::new(4)
            .engine(Engine::BarrierLess {
                memory: MemoryPolicy::SpillMerge {
                    threshold_bytes: 16 << 10,
                },
            })
            .snapshots(policy)
            .scratch_dir(scratch());
        let wall_ms = best_of_3(|| {
            LocalRunner::new(4)
                .run(&mr_apps::WordCount, splits.clone(), &cfg)
                .expect("spill run");
        });
        let out = LocalRunner::new(4)
            .run(&mr_apps::WordCount, splits.clone(), &cfg)
            .expect("spill run");
        assert!(
            out.counters.get(names::SPILL_FILES) > 0,
            "threshold never tripped"
        );
        rows.push(vec![
            label.to_string(),
            format!("{wall_ms:.1}"),
            out.counters.get(names::SPILL_FILES).to_string(),
            out.counters.get(names::SNAPSHOT_COUNT).to_string(),
            out.counters.get(names::SNAPSHOT_BYTES).to_string(),
        ]);
        spill_outputs.push(out.into_sorted_output());
    }
    assert_eq!(
        spill_outputs[0], spill_outputs[1],
        "snapshots changed spill-store output"
    );
    print!(
        "{}",
        table(
            &[
                "policy",
                "wall (ms)",
                "spill files",
                "snapshots",
                "snap bytes"
            ],
            &rows
        )
    );
    println!(
        "\n(byte-exact output; snapshots of a spilled store merge its run files\n\
         with the live map on every walk — the snap-bytes column is that cost)\n"
    );

    // ---------------------------------------------- simulated cluster
    println!("--- simulated cluster (1 GB, 8 reducers): charged virtual time ---");
    let mut rows = Vec::new();
    let mut outputs = Vec::new();
    let mut base_secs = f64::NAN;
    for (label, policy) in [
        ("disabled", SnapshotPolicy::Disabled),
        ("every 60 sim-s", SnapshotPolicy::EverySecs { secs: 60.0 }),
        ("every 15 sim-s", SnapshotPolicy::EverySecs { secs: 15.0 }),
    ] {
        let start = Instant::now();
        let report = run_wordcount_snapshotted(1.0, 8, barrierless(), 7, policy);
        let host_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(report.outcome.is_completed(), "sim failed under {label}");
        let secs = report.outcome.completion_secs().unwrap();
        let delta = if base_secs.is_nan() {
            base_secs = secs;
            "-".to_string()
        } else {
            format!("{:+.1}%", 100.0 * (secs / base_secs - 1.0))
        };
        rows.push(vec![
            label.to_string(),
            format!("{secs:.1}"),
            delta,
            report.snapshots_taken.to_string(),
            format!("{host_ms:.0}"),
        ]);
        outputs.push(report.output.expect("completed").into_sorted_output());
    }
    for pair in outputs.windows(2) {
        assert_eq!(pair[0], pair[1], "snapshot policy changed simulated output");
    }
    print!(
        "{}",
        table(
            &[
                "policy",
                "sim completion (s)",
                "vs off",
                "snapshots",
                "host wall (ms)"
            ],
            &rows
        )
    );
    println!("\n(byte-exact output; aggressive ticking costs charged sim time, never bytes)");
}
