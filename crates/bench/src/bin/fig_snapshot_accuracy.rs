//! `fig_snapshot_accuracy` — estimate error vs. fraction of job complete.
//!
//! The paper's headline capability, plotted: with the stage barrier
//! broken, reducers hold usable per-key partial states long before the
//! job finishes, so periodic snapshots yield a smoothly converging
//! estimate of the final answer — while the classic barrier engine has
//! *nothing* to show until its reducers finish sorting and grouping
//! after the last map. Three applications (WordCount, Last.fm unique
//! listens, kNN), both engines, time-driven snapshots on the simulated
//! paper testbed; each app scores its own estimates via
//! `Application::snapshot_error` (relative count error for the counting
//! apps, wrong-neighbour fraction for kNN).
//!
//! Run: `cargo run --release -p mr-bench --bin fig_snapshot_accuracy`

use mr_bench::appcfg::{run_knn_snapshotted, run_lastfm_snapshotted, run_wordcount_snapshotted};
use mr_bench::chart::line_chart;
use mr_cluster::SimReport;
use mr_core::{Application, Engine, JobOutput, MemoryPolicy, SnapshotPolicy};

/// `(fraction of job complete, estimate error)` points.
type Curve = Vec<(f64, f64)>;

/// Observer's-eye error curve: at each snapshot publication, combine the
/// *latest* snapshot of every reducer into one global estimate and score
/// it against the final output. Returns `(fraction complete, error)`.
fn error_curve<A: Application>(app: &A, out: &JobOutput<A>, completion_secs: f64) -> Curve {
    let mut truth: Vec<(A::OutKey, A::OutValue)> = out
        .partitions
        .iter()
        .flat_map(|p| p.iter().cloned())
        .collect();
    truth.sort_by(|a, b| a.0.cmp(&b.0));
    let events = out.snapshots_by_time();
    let mut latest: Vec<Option<usize>> = vec![None; out.partitions.len()];
    let mut curve: Curve = Vec::new();
    let mut i = 0;
    // One point per distinct publication instant (a tick delivers one
    // snapshot per reducer; score the estimate after all of them).
    while i < events.len() {
        let at = events[i].at_secs;
        while i < events.len() && events[i].at_secs == at {
            latest[events[i].reducer] = Some(i);
            i += 1;
        }
        let mut estimate: Vec<(A::OutKey, A::OutValue)> = latest
            .iter()
            .flatten()
            .flat_map(|&j| events[j].estimate.iter().cloned())
            .collect();
        estimate.sort_by(|a, b| a.0.cmp(&b.0));
        curve.push((
            (at / completion_secs).min(1.0),
            app.snapshot_error(&estimate, &truth),
        ));
    }
    curve
}

/// One app panel: score both engines' snapshot streams and assert the
/// paper-shaped result.
fn panel<A: Application>(
    title: &str,
    app: &A,
    barrier: SimReport<A>,
    barrierless: SimReport<A>,
) -> (Curve, Curve) {
    assert!(barrier.outcome.is_completed(), "{title}: barrier died");
    assert!(
        barrierless.outcome.is_completed(),
        "{title}: barrier-less died"
    );

    // Byte-exact final output under both engines, snapshots on.
    let canon = |o: &JobOutput<A>| {
        let mut all: Vec<(A::OutKey, A::OutValue)> = o
            .partitions
            .iter()
            .flat_map(|p| p.iter().cloned())
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    };
    let bar_out = barrier.output.as_ref().expect("completed");
    let less_out = barrierless.output.as_ref().expect("completed");
    let bar_final = canon(bar_out);
    let less_final = canon(less_out);
    // Byte-exactness without an Eq bound: equal record counts plus zero
    // error in *both* directions (a one-sided check would let an
    // estimate with spurious extra records pass for error metrics that
    // only walk truth keys, like kNN's).
    assert_eq!(
        bar_final.len(),
        less_final.len(),
        "{title}: engines disagree on output size"
    );
    assert_eq!(
        app.snapshot_error(&less_final, &bar_final),
        0.0,
        "{title}: engines disagree on final output"
    );
    assert_eq!(
        app.snapshot_error(&bar_final, &less_final),
        0.0,
        "{title}: engines disagree on final output (reverse)"
    );

    let bar_curve = error_curve(app, bar_out, barrier.completion_secs());
    let less_curve = error_curve(app, less_out, barrierless.completion_secs());

    // The paper-shaped claims, asserted:
    // 1. the barrier engine publishes nothing useful before its last map
    //    finished — every non-empty snapshot is post-barrier;
    let bar_maps_done = barrier.last_map_done.as_secs_f64();
    for snap in bar_out.snapshots.iter().flatten() {
        if !snap.estimate.is_empty() {
            assert!(
                snap.at_secs >= bar_maps_done,
                "{title}: barrier engine estimated before the barrier"
            );
        }
    }
    // 2. the barrier-less engine already holds a usable estimate while
    //    maps are still running;
    let less_maps_done = barrierless.last_map_done.as_secs_f64();
    let early_usable = less_out
        .snapshots
        .iter()
        .flatten()
        .any(|s| s.at_secs < less_maps_done && !s.estimate.is_empty());
    assert!(
        early_usable,
        "{title}: no usable barrier-less estimate before maps completed"
    );
    // 3. the estimate converges: the last point is exact.
    assert_eq!(
        less_curve.last().expect("snapshots exist").1,
        0.0,
        "{title}: barrier-less estimate never converged"
    );

    (bar_curve, less_curve)
}

fn print_panel(title: &str, bar: &[(f64, f64)], less: &[(f64, f64)]) {
    let to_pct = |curve: &[(f64, f64)]| -> Vec<(f64, f64)> {
        curve.iter().map(|&(x, e)| (x, e * 100.0)).collect()
    };
    print!(
        "{}",
        line_chart(
            title,
            "fraction of job complete",
            "error %",
            &[
                ("with barrier", to_pct(bar)),
                ("without barrier", to_pct(less)),
            ],
            72,
            18,
        )
    );
    let mid = |curve: &[(f64, f64)]| {
        curve
            .iter()
            .filter(|(x, _)| *x <= 0.5)
            .map(|(_, e)| e)
            .next_back()
            .copied()
    };
    println!(
        "  error at half-way: barrier {}, barrier-less {}\n",
        mid(bar).map_or("n/a".to_string(), |e| format!("{:.0}%", e * 100.0)),
        mid(less).map_or("n/a".to_string(), |e| format!("{:.0}%", e * 100.0)),
    );
}

fn main() {
    let barrierless = Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    };
    let tick = SnapshotPolicy::EverySecs { secs: 10.0 };
    println!("== fig_snapshot_accuracy: estimate error vs fraction of job complete ==");
    println!("   (4 GB input, 20 reducers, snapshots every 10 simulated seconds)\n");

    let wc = mr_apps::WordCount;
    let (bar, less) = panel(
        "WordCount",
        &wc,
        run_wordcount_snapshotted(4.0, 20, Engine::Barrier, 7, tick),
        run_wordcount_snapshotted(4.0, 20, barrierless.clone(), 7, tick),
    );
    print_panel("WordCount (relative count error x100)", &bar, &less);

    let pp = mr_apps::UniqueListens;
    let (bar, less) = panel(
        "Last.fm",
        &pp,
        run_lastfm_snapshotted(4.0, 20, Engine::Barrier, 7, tick),
        run_lastfm_snapshotted(4.0, 20, barrierless.clone(), 7, tick),
    );
    print_panel(
        "Last.fm unique listens (relative count error x100)",
        &bar,
        &less,
    );

    let (knn_app, knn_bar) = run_knn_snapshotted(4.0, 20, Engine::Barrier, 7, tick);
    let (_, knn_less) = run_knn_snapshotted(4.0, 20, barrierless, 7, tick);
    let (bar, less) = panel("kNN", &knn_app, knn_bar, knn_less);
    print_panel("kNN (wrong-neighbour fraction x100)", &bar, &less);

    println!(
        "All panels: byte-exact final output under both engines; the barrier\n\
         engine's first useful snapshot appears only after the map stage, while\n\
         the barrier-less estimate converges during it."
    );
}
