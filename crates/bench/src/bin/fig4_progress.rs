//! Figure 4: system-wide progress of WordCount on a 3 GB dataset, with
//! and without the barrier — the count of tasks active in each stage over
//! time.
//!
//! The shapes to look for (paper §3.2): with the barrier, Reduce bars
//! appear only after the last map finishes; without it, the combined
//! Shuffle+Reduce stage starts as soon as the first mappers complete, and
//! the job ends shortly after the final map.

use mr_bench::appcfg::{barrierless, run_wordcount};
use mr_bench::chart::line_chart;
use mr_bench::stats::improvement_pct;
use mr_cluster::SpanKind;
use mr_core::Engine;

fn main() {
    let gb = 3.0;
    let reducers = 40;
    println!("== Figure 4: WordCount progress on a {gb} GB dataset ==\n");

    let barrier = run_wordcount(gb, reducers, Engine::Barrier, 42);
    let t_barrier = barrier.completion_secs();
    {
        let horizon = barrier.timeline.last_end();
        let step = horizon.as_secs_f64() / 60.0;
        let tl = &barrier.timeline;
        let to_pts = |kind| {
            tl.series(kind, step, horizon)
                .into_iter()
                .map(|(x, y)| (x, y as f64))
                .collect::<Vec<_>>()
        };
        println!("--- (a) with barrier ---");
        print!(
            "{}",
            line_chart(
                "active tasks vs time (s)",
                "time (s)",
                "tasks",
                &[
                    ("Map", to_pts(SpanKind::Map)),
                    ("Shuffle", to_pts(SpanKind::Shuffle)),
                    ("Reduce", to_pts(SpanKind::SortReduce)),
                ],
                66,
                14,
            )
        );
        println!(
            "  first map done {:>6.1}s | last map done {:>6.1}s | shuffle done {:>6.1}s",
            barrier.first_map_done.as_secs_f64(),
            barrier.last_map_done.as_secs_f64(),
            barrier.shuffle_done.as_secs_f64(),
        );
        let reduce_window = tl.kind_window(SpanKind::SortReduce).expect("reduce ran");
        println!(
            "  reduce began   {:>6.1}s (after the barrier) | job completed {:>6.1}s\n",
            reduce_window.0.as_secs_f64(),
            t_barrier
        );
    }

    let pipelined = run_wordcount(gb, reducers, barrierless(), 42);
    let t_pipelined = pipelined.completion_secs();
    {
        let horizon = pipelined.timeline.last_end();
        let step = horizon.as_secs_f64() / 60.0;
        let tl = &pipelined.timeline;
        let to_pts = |kind| {
            tl.series(kind, step, horizon)
                .into_iter()
                .map(|(x, y)| (x, y as f64))
                .collect::<Vec<_>>()
        };
        println!("--- (b) without barrier ---");
        print!(
            "{}",
            line_chart(
                "active tasks vs time (s)",
                "time (s)",
                "tasks",
                &[
                    ("Map", to_pts(SpanKind::Map)),
                    ("Shuffle+Reduce", to_pts(SpanKind::ShuffleReduce)),
                    ("Output", to_pts(SpanKind::Output)),
                ],
                66,
                14,
            )
        );
        let sr = tl.kind_window(SpanKind::ShuffleReduce).expect("ran");
        println!(
            "  first map done {:>6.1}s | last map done {:>6.1}s",
            pipelined.first_map_done.as_secs_f64(),
            pipelined.last_map_done.as_secs_f64(),
        );
        println!(
            "  shuffle+reduce began {:>6.1}s (overlapping maps) | job completed {:>6.1}s",
            sr.0.as_secs_f64(),
            t_pipelined
        );
        println!(
            "  gap between final map and job end: {:.1}s (paper: ~10s)\n",
            t_pipelined - pipelined.last_map_done.as_secs_f64()
        );
    }

    println!(
        "improvement in job completion time: {:.1}% (paper: ~30% for this experiment)",
        improvement_pct(t_barrier, t_pipelined)
    );
}
