//! Table 1: sort and memory requirements of the seven application
//! classes — verified *empirically* by running each app at two input
//! scales through the real barrier-less engine and watching how its
//! partial-result store grows.

use mr_bench::chart::table;
use mr_core::local::LocalRunner;
use mr_core::{Application, Engine, JobConfig};
use mr_workloads::{
    GaWorkload, KnnWorkload, LastFmWorkload, PricingWorkload, SortWorkload, TextWorkload,
};

/// Peak store entries and bytes of one barrier-less run.
fn measure<A: Application>(
    app: &A,
    splits: Vec<Vec<(A::InKey, A::InValue)>>,
) -> (usize, u64, bool) {
    let cfg = JobConfig::new(2).engine(Engine::barrierless());
    let out = LocalRunner::new(4)
        .run(app, splits, &cfg)
        .expect("job runs");
    let entries = out.total_peak_entries();
    let bytes = out.reports.iter().map(|r| r.store.peak_bytes).sum();
    (entries, bytes, app.requires_sorted_output())
}

fn growth_class(entries_ratio: f64, bytes_ratio: f64, entries_large: usize) -> &'static str {
    if entries_large == 0 && bytes_ratio <= 1.01 {
        "O(1) / O(window)"
    } else if bytes_ratio > 2.5 {
        "O(records)"
    } else {
        let _ = entries_ratio;
        "O(keys)-bounded"
    }
}

fn main() {
    println!("== Table 1: sort & memory requirements, measured ==\n");
    println!("(each app runs at 1x and 4x records; growth of the partial-result");
    println!(" store decides the memory class, matching the paper's Table 1)\n");
    let mut rows = Vec::new();

    // Identity: grep.
    {
        let app = mr_apps::Grep::new("w00000");
        let w = TextWorkload {
            seed: 1,
            vocab: 2000,
            zipf_s: 1.0,
            lines_per_chunk: 80,
            words_per_line: 6,
        };
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "Distributed Grep (Identity)",
            "No",
            "O(1)",
            small,
            large,
        ));
    }
    // Sorting.
    {
        let app = mr_apps::Sort;
        let w = SortWorkload::new(2, 300);
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "Sort (Sorting)",
            "Yes",
            "O(records)",
            small,
            large,
        ));
    }
    // Aggregation: wordcount over a *fixed* vocabulary.
    {
        let app = mr_apps::WordCount;
        let w = TextWorkload {
            seed: 3,
            vocab: 300,
            zipf_s: 0.6,
            lines_per_chunk: 150,
            words_per_line: 8,
        };
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "Word Count (Aggregation)",
            "No",
            "O(keys)",
            small,
            large,
        ));
    }
    // Selection: kNN, k entries per key.
    {
        let w = KnnWorkload {
            seed: 4,
            experimental: 50,
            train_per_chunk: 200,
            value_range: 1_000_000,
        };
        let app = mr_apps::KnnBarrierless {
            k: 10,
            experimental: w.experimental_set(),
        };
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "k-Nearest Neighbors (Selection)",
            "No",
            "O(k*keys)",
            small,
            large,
        ));
    }
    // Post-reduction: unique listens with an open-ended user population.
    {
        let app = mr_apps::UniqueListens;
        let w = LastFmWorkload {
            seed: 5,
            users: 1_000_000,
            tracks: 40,
            listens_per_chunk: 400,
        };
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "Last.fm unique listens (Post-reduction)",
            "No",
            "O(records)",
            small,
            large,
        ));
    }
    // Cross-key: GA window.
    {
        let app = mr_apps::GeneticAlgorithm::default();
        let w = GaWorkload::new(6, 200);
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "Genetic Algorithms (Cross-key)",
            "No",
            "O(window)",
            small,
            large,
        ));
    }
    // Single-reducer aggregation: Black-Scholes.
    {
        let app = mr_apps::BlackScholes;
        let w = PricingWorkload::new(7, 400);
        let small = measure(&app, (0..2).map(|c| w.chunk(c)).collect());
        let large = measure(&app, (0..8).map(|c| w.chunk(c)).collect());
        rows.push(make_row(
            "Black Scholes (Single-reducer agg.)",
            "No",
            "O(1)",
            small,
            large,
        ));
    }

    print!(
        "{}",
        table(
            &[
                "Application (class)",
                "Key sort",
                "Paper says",
                "peak entries 1x -> 4x",
                "peak bytes 1x -> 4x",
                "measured class"
            ],
            &rows
        )
    );
}

fn make_row(
    name: &str,
    sort_required: &str,
    paper: &str,
    small: (usize, u64, bool),
    large: (usize, u64, bool),
) -> Vec<String> {
    let entries_ratio = large.0 as f64 / small.0.max(1) as f64;
    let bytes_ratio = large.1 as f64 / small.1.max(1) as f64;
    // Sanity: the engine agrees with the app about the sorting contract.
    assert_eq!(
        small.2,
        sort_required == "Yes",
        "sort contract mismatch for {name}"
    );
    vec![
        name.to_string(),
        sort_required.to_string(),
        paper.to_string(),
        format!("{} -> {}", small.0, large.0),
        format!("{} -> {}", small.1, large.1),
        growth_class(entries_ratio, bytes_ratio, large.0).to_string(),
    ]
}
