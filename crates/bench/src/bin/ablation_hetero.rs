//! Ablation (the paper's §8 future work): how much of the barrier-less
//! benefit comes from cluster *heterogeneity* and link
//! *oversubscription* — the two sources of mapper slack the paper
//! identifies in §2.
//!
//! "It is possible that exploring the effects of heterogeneity may likely
//! yield larger improvements" — this sweep tests exactly that prediction:
//! the improvement should grow with the node-speed spread and with link
//! oversubscription, and shrink toward a homogeneous, uncontended
//! cluster.

use mr_bench::appcfg::{barrierless, scratch, wc_costs, wc_workload};
use mr_bench::chart::table;
use mr_bench::stats::improvement_pct;
use mr_cluster::{ClusterParams, FnInput, SimExecutor};
use mr_core::{Engine, HashPartitioner, JobConfig};

fn run(sigma: f64, oversub: f64, engine: Engine) -> (f64, f64) {
    let mut params = ClusterParams::paper_testbed(42);
    params.hetero_sigma = sigma;
    params.oversubscription = oversub;
    let w = wc_workload(42);
    let cfg = JobConfig::new(40)
        .engine(engine)
        .heap_scale(mr_bench::appcfg::WC_HEAP_SCALE)
        .scratch_dir(scratch());
    let report = SimExecutor::new(params).run(
        &mr_apps::WordCount,
        &FnInput(move |c| w.chunk(c)),
        mr_bench::appcfg::chunks_for_gb(8.0),
        &cfg,
        &wc_costs(),
        &HashPartitioner,
    );
    (report.completion_secs(), report.mapper_slack_secs())
}

fn main() {
    println!("== Ablation: heterogeneity & oversubscription vs barrier-less benefit ==");
    println!("   (WordCount 8 GB, 40 reducers; paper §2 and §8)\n");

    println!("--- node-speed spread (oversubscription fixed at 2.0) ---");
    let mut rows = Vec::new();
    for sigma in [0.0, 0.1, 0.25, 0.4, 0.55] {
        let (tb, _) = run(sigma, 2.0, Engine::Barrier);
        let (tp, slack) = run(sigma, 2.0, barrierless());
        rows.push(vec![
            format!("{sigma:.2}"),
            format!("{tb:.1}"),
            format!("{tp:.1}"),
            format!("{:+.1}%", improvement_pct(tb, tp)),
            format!("{slack:.1}"),
        ]);
    }
    print!(
        "{}",
        table(
            &[
                "hetero sigma",
                "barrier (s)",
                "barrier-less (s)",
                "improvement",
                "mapper slack (s)"
            ],
            &rows
        )
    );

    println!("\n--- link oversubscription (sigma fixed at 0.25) ---");
    let mut rows = Vec::new();
    for oversub in [1.0, 2.0, 4.0, 8.0] {
        let (tb, _) = run(0.25, oversub, Engine::Barrier);
        let (tp, slack) = run(0.25, oversub, barrierless());
        rows.push(vec![
            format!("{oversub:.0}x"),
            format!("{tb:.1}"),
            format!("{tp:.1}"),
            format!("{:+.1}%", improvement_pct(tb, tp)),
            format!("{slack:.1}"),
        ]);
    }
    print!(
        "{}",
        table(
            &[
                "oversub",
                "barrier (s)",
                "barrier-less (s)",
                "improvement",
                "mapper slack (s)"
            ],
            &rows
        )
    );
    println!("\n(observed: slack does widen with both knobs, but the *relative* benefit");
    println!(" stays within a band — heterogeneity also stretches the barrier-less");
    println!(" finalize/output on slow nodes, partially offsetting the extra overlap.");
    println!(" The paper's §8 speculation that heterogeneity 'may likely yield larger");
    println!(" improvements' holds only weakly under this model: the dominant term is");
    println!(" the eliminated sort+reduce tail, not the slack itself.)");
}
