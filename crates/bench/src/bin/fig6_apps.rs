//! Figure 6 (a–f): job completion times of the six case studies, with and
//! without the barrier, swept over input size (or mapper count).
//!
//! Usage: `fig6_apps [sort|wordcount|knn|lastfm|ga|bs]...` (default: all).

use mr_bench::appcfg::{barrierless, AppId};
use mr_bench::chart::{line_chart, table};
use mr_bench::stats::improvement_pct;
use mr_core::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps: Vec<AppId> = if args.is_empty() {
        AppId::ALL.to_vec()
    } else {
        args.iter()
            .map(|a| match a.as_str() {
                "sort" => AppId::Sort,
                "wordcount" | "wc" => AppId::WordCount,
                "knn" => AppId::Knn,
                "lastfm" | "pp" => AppId::LastFm,
                "ga" => AppId::Ga,
                "bs" => AppId::Bs,
                other => panic!("unknown app {other}"),
            })
            .collect()
    };

    println!("== Figure 6: job completion times, with vs without barrier ==\n");
    for app in apps {
        let mut with_barrier = Vec::new();
        let mut without = Vec::new();
        let mut rows = Vec::new();
        for x in app.sweep() {
            let b = app.run(x, Engine::Barrier, 42);
            let p = app.run(x, barrierless(), 42);
            with_barrier.push((x, b.secs));
            without.push((x, p.secs));
            rows.push(vec![
                format!("{x:.0}"),
                format!("{:.1}", b.secs),
                format!("{:.1}", p.secs),
                format!("{:+.1}%", improvement_pct(b.secs, p.secs)),
                format!("{:.1}", p.mapper_slack),
            ]);
        }
        println!(
            "--- Figure 6 ({}) : {} ---",
            app.label(),
            match app {
                AppId::Sort => "Sort",
                AppId::WordCount => "WordCount",
                AppId::Knn => "k-Nearest Neighbors",
                AppId::LastFm => "Last.fm Post Processing",
                AppId::Ga => "Genetic Algorithms",
                AppId::Bs => "Black-Scholes",
            }
        );
        print!(
            "{}",
            table(
                &[
                    app.x_label(),
                    "barrier (s)",
                    "barrier-less (s)",
                    "improvement",
                    "mapper slack (s)"
                ],
                &rows
            )
        );
        println!();
        print!(
            "{}",
            line_chart(
                &format!("Figure 6 {} — time (s) vs {}", app.label(), app.x_label()),
                app.x_label(),
                "time (s)",
                &[("with barrier", with_barrier), ("without barrier", without)],
                64,
                16,
            )
        );
        println!();
    }
}
