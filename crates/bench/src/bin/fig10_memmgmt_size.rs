//! Figure 10: WordCount under the four memory-management techniques with
//! increasing dataset size (10 reducers).
//!
//! Paper shapes: spill-and-merge and in-memory both beat the barrier as
//! data grows; the in-memory technique stops completing at large sizes
//! (heap exhaustion); the KV store cannot keep up at any size.

use mr_bench::appcfg::{run_wc_technique, MemTechnique};
use mr_bench::chart::{line_chart, table};

fn main() {
    let reducers = 10;
    println!(
        "== Figure 10: WordCount memory techniques vs dataset size ({reducers} reducers) ==\n"
    );
    let sizes = [2.0f64, 4.0, 8.0, 12.0, 16.0, 20.0, 25.0];
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = MemTechnique::ALL
        .iter()
        .map(|t| (t.label(), Vec::new()))
        .collect();
    let mut rows = Vec::new();
    for &gb in &sizes {
        let mut row = vec![format!("{gb:.0}")];
        for (i, &t) in MemTechnique::ALL.iter().enumerate() {
            let s = run_wc_technique(gb, reducers, t);
            if s.failed {
                row.push("FAIL (OOM)".to_string());
            } else {
                row.push(format!("{:.1}", s.secs));
                series[i].1.push((gb, s.secs));
            }
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("GB")
        .chain(MemTechnique::ALL.iter().map(|t| t.label()))
        .collect();
    print!("{}", table(&headers, &rows));
    println!();
    print!(
        "{}",
        line_chart(
            "WordCount completion (s) vs input size (GB)",
            "input (GB)",
            "time (s)",
            &series,
            64,
            16,
        )
    );
}
