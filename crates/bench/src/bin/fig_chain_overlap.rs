//! `fig_chain_overlap` — collapsing the barrier *between* concatenated
//! jobs.
//!
//! The paper's strongest claim beyond single-job pipelining: for chained
//! MapReduce jobs, job N+1's map stage can start consuming job N's
//! reduce output while job N is still running. This figure runs the
//! `wordcount → top-k` chain on the simulated testbed under both
//! handoff modes and plots per-stage activity over time. Three
//! assertions pin the paper-shaped result:
//!
//! 1. the streaming chain's stage-2 map work starts *before* job 1's
//!    last reducer finishes (overlap exists),
//! 2. the barrier chain's stage 2 starts only after job 1 completes
//!    (and its materialized output is written and re-read), and
//! 3. the streaming chain *finishes* before the barrier chain's stage 2
//!    even starts — the whole downstream job rides inside the window
//!    the barrier baseline spends materializing and gating.
//!
//! Run: `cargo run --release -p mr-bench --bin fig_chain_overlap`

use mr_apps::topk::TopK;
use mr_apps::wordcount::WordCount;
use mr_bench::appcfg::{testbed, wc_costs, wc_workload};
use mr_bench::chart::line_chart;
use mr_cluster::{ChainSimExecutor, ChainSimReport, CostModel, FnInput, SpanKind};
use mr_core::{ChainSpec, Engine, HandoffMode, HashPartitioner, JobConfig, TraceQuery};

/// The chain's cost model: WordCount's calibration with a heavyweight
/// intermediate dataset (the chain's whole point is not materializing
/// it) and a cheap downstream map transform.
fn chain_costs() -> CostModel {
    CostModel {
        // A bulky intermediate dataset (nominal wire bytes per real
        // handed-off byte): the barrier baseline pays its replicated DFS
        // write plus the re-read at the seam; the streaming chain ships
        // the same volume as overlapped flows and never touches the DFS.
        chain_handoff_byte_scale: 32768.0,
        chain_map_cpu_per_record: 5.0e-4,
        // The downstream job condenses: light shuffle, cheap fold, tiny
        // output — top-k keeps O(k) state per record stream.
        shuffle_selectivity: 0.1,
        reduce_cpu_per_record: 2.0e-4,
        output_selectivity: 0.05,
        ..wc_costs()
    }
}

fn run(gb: f64, handoff: HandoffMode, seed: u64) -> ChainSimReport<TopK> {
    let chunks = ((gb * 1024.0) / 64.0).round().max(1.0) as u64;
    let w = wc_workload(seed);
    let spec = ChainSpec::new(vec![
        JobConfig::new(8).engine(Engine::barrierless()),
        JobConfig::new(2).engine(Engine::barrierless()),
    ])
    .handoff(handoff);
    ChainSimExecutor::new(testbed(seed)).run_chain2(
        &WordCount,
        &TopK::new(20),
        &FnInput(move |c| w.chunk(c)),
        chunks,
        &spec,
        &chain_costs(),
        &HashPartitioner,
        &HashPartitioner,
    )
}

/// Active stage-1-reduce and stage-2 task counts over time, read
/// straight off the chain's unified trace (stage 1 = job 0, stage 2 =
/// job 1).
fn activity_series(report: &ChainSimReport<TopK>) -> Vec<(&'static str, Vec<(f64, f64)>)> {
    let q = TraceQuery::new(&report.trace);
    let horizon = q.last_end_secs();
    let step = (horizon / 60.0).max(1.0);
    let to_f64 = |series: Vec<(f64, usize)>| {
        series
            .into_iter()
            .map(|(x, y)| (x, y as f64))
            .collect::<Vec<_>>()
    };
    vec![
        (
            "job1 reduce",
            to_f64(q.series(0, SpanKind::ShuffleReduce, step, horizon)),
        ),
        (
            "job2 map",
            to_f64(q.series(1, SpanKind::Map, step, horizon)),
        ),
        (
            "job2 reduce",
            to_f64(q.series(1, SpanKind::ShuffleReduce, step, horizon)),
        ),
    ]
}

fn main() {
    let gb = 1.0;
    let seed = 23;
    let streaming = run(gb, HandoffMode::Streaming, seed);
    let barrier = run(gb, HandoffMode::Barrier, seed);
    assert!(streaming.outcome.is_completed(), "streaming chain failed");
    assert!(barrier.outcome.is_completed(), "barrier chain failed");

    let s_first = streaming
        .stage2_first_work
        .expect("streaming stage 2 ran")
        .as_secs_f64();
    let b_first = barrier
        .stage2_first_work
        .expect("barrier stage 2 ran")
        .as_secs_f64();
    let s_total = streaming.completion_secs();
    let b_total = barrier.completion_secs();

    println!("fig_chain_overlap — wordcount → top-k at {gb} GB, 8 → 2 reducers\n");
    for (name, r) in [("streaming", &streaming), ("barrier", &barrier)] {
        println!(
            "  {name:<10} stage-1 reduce done {:>7.1}s  stage-1 complete {:>7.1}s  \
             stage-2 first work {:>7.1}s  total {:>7.1}s  handoff edges {:>3}",
            r.stage1_last_reduce_done.as_secs_f64(),
            r.stage1_complete.as_secs_f64(),
            r.stage2_first_work.unwrap().as_secs_f64(),
            r.completion_secs(),
            r.handoff_edges,
        );
    }
    println!();
    println!(
        "{}",
        line_chart(
            "streaming handoff: stage activity over time",
            "seconds",
            "active tasks",
            &activity_series(&streaming),
            72,
            14,
        )
    );
    println!(
        "{}",
        line_chart(
            "barrier handoff: stage activity over time",
            "seconds",
            "active tasks",
            &activity_series(&barrier),
            72,
            14,
        )
    );

    // 1. Overlap exists only without the inter-job barrier.
    assert!(
        streaming.overlapped(),
        "streaming chain: stage-2 work ({s_first:.1}s) never overlapped stage-1 \
         reduce (done {:.1}s)",
        streaming.stage1_last_reduce_done.as_secs_f64()
    );
    assert!(
        !barrier.overlapped() && b_first >= barrier.stage1_complete.as_secs_f64(),
        "barrier chain overlapped stages: first work {b_first:.1}s, stage 1 complete {:.1}s",
        barrier.stage1_complete.as_secs_f64()
    );
    // 2. Identical answers.
    let s_out = streaming.output.as_ref().unwrap();
    let b_out = barrier.output.as_ref().unwrap();
    assert_eq!(
        s_out.partitions, b_out.partitions,
        "handoff mode changed the chained output"
    );
    // 3. The paper-shaped headline: the barrier-less chain FINISHES
    //    before the barrier chain's stage 2 even STARTS.
    assert!(
        s_total < b_first,
        "streaming chain total ({s_total:.1}s) did not beat the barrier chain's \
         stage-2 start ({b_first:.1}s)"
    );
    println!(
        "streaming chain finished at {s_total:.1}s — {:.1}s before the barrier chain's \
         stage 2 started ({b_first:.1}s); barrier chain total {b_total:.1}s ({:.0}% slower)",
        b_first - s_total,
        100.0 * (b_total / s_total - 1.0),
    );
}
