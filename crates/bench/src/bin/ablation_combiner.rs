//! Ablation: map-side combining × engine.
//!
//! The barrier-less pipeline makes the shuffle the hot path — every
//! record crosses the network the moment it is produced — so the classic
//! communication-volume levers (combining, batching) matter *more*
//! without the barrier, not less. This sweep toggles the combiner under
//! both engines on WordCount and reports simulated shuffle bytes,
//! completion time, and the record reduction, verifying along the way
//! that the output is byte-identical with combining on or off.
//!
//! A second section runs the real threaded executor (small input) and
//! shows the same invariant plus the transport counters: combined
//! records are what actually crossed the batched shuffle channels.

use mr_bench::appcfg::{run_wordcount_with_combiner, scratch, WC_HEAP_SCALE};
use mr_bench::chart::table;
use mr_bench::stats::improvement_pct;
use mr_core::counters::names;
use mr_core::local::LocalRunner;
use mr_core::{CombinerPolicy, Engine, JobConfig, MemoryPolicy};
use mr_workloads::TextWorkload;

fn engine_label(e: &Engine) -> &'static str {
    match e {
        Engine::Barrier => "barrier",
        Engine::BarrierLess { .. } => "barrier-less",
    }
}

fn barrierless() -> Engine {
    Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    }
}

fn main() {
    println!("== Ablation: map-side combining x engine (WordCount) ==\n");

    // ---------------------------------------------- simulated cluster
    println!("--- simulated cluster (4 GB, 40 reducers, paper testbed) ---");
    let mut rows = Vec::new();
    for engine in [Engine::Barrier, barrierless()] {
        let mut outputs = Vec::new();
        let mut baseline_secs = f64::NAN;
        let mut baseline_bytes = 0u64;
        for combiner in [CombinerPolicy::Disabled, CombinerPolicy::enabled()] {
            let report = run_wordcount_with_combiner(4.0, 40, engine.clone(), 42, combiner);
            assert!(
                report.outcome.is_completed(),
                "{} combine={:?} failed",
                engine_label(&engine),
                combiner
            );
            let secs = report.outcome.completion_secs().unwrap();
            let shuffle_gb = report.shuffle_bytes as f64 / (1 << 30) as f64;
            let out = report.output.expect("completed");
            let combined_in = out.counters.get(names::COMBINE_INPUT_RECORDS);
            let combined_out = out.counters.get(names::COMBINE_OUTPUT_RECORDS);
            let records = if combiner.is_enabled() {
                format!("{combined_in} -> {combined_out}")
            } else {
                format!("{}", out.counters.get(names::MAP_OUTPUT_RECORDS))
            };
            outputs.push(out.into_sorted_output());
            let delta = if combiner.is_enabled() {
                format!("{:+.1}%", improvement_pct(baseline_secs, secs))
            } else {
                baseline_secs = secs;
                baseline_bytes = report.shuffle_bytes;
                "-".to_string()
            };
            rows.push(vec![
                engine_label(&engine).to_string(),
                if combiner.is_enabled() { "on" } else { "off" }.to_string(),
                format!("{shuffle_gb:.2}"),
                format!("{secs:.1}"),
                delta,
                records,
            ]);
            if combiner.is_enabled() {
                let last = rows.last_mut().unwrap();
                let reduction = 100.0 * (1.0 - report.shuffle_bytes as f64 / baseline_bytes as f64);
                last[2] = format!("{shuffle_gb:.2} (-{reduction:.0}%)");
            }
        }
        assert_eq!(
            outputs[0],
            outputs[1],
            "combining changed {} output",
            engine_label(&engine)
        );
    }
    print!(
        "{}",
        table(
            &[
                "engine",
                "combiner",
                "shuffle (GB)",
                "completion (s)",
                "vs off",
                "shuffle records"
            ],
            &rows
        )
    );
    println!("\n(byte-exact output invariant verified for both engines)\n");

    // --------------------------------------------- real local executor
    println!("--- real threaded executor (LocalRunner, 16 chunks) ---");
    let w = TextWorkload {
        seed: 42,
        vocab: 2_000,
        zipf_s: 1.0,
        lines_per_chunk: 400,
        words_per_line: 8,
    };
    let splits: Vec<Vec<(u64, String)>> = (0..16).map(|c| w.chunk(c)).collect();
    let mut rows = Vec::new();
    for engine in [Engine::Barrier, barrierless()] {
        let mut outputs = Vec::new();
        for combiner in [CombinerPolicy::Disabled, CombinerPolicy::enabled()] {
            let cfg = JobConfig::new(8)
                .engine(engine.clone())
                .combiner(combiner)
                .heap_scale(WC_HEAP_SCALE)
                .scratch_dir(scratch());
            let start = std::time::Instant::now();
            let out = LocalRunner::new(4)
                .run(&mr_apps::WordCount, splits.clone(), &cfg)
                .expect("local run");
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let map_out = out.counters.get(names::MAP_OUTPUT_RECORDS);
            let shuffled = if combiner.is_enabled() {
                out.counters.get(names::COMBINE_OUTPUT_RECORDS)
            } else {
                map_out
            };
            rows.push(vec![
                engine_label(&engine).to_string(),
                if combiner.is_enabled() { "on" } else { "off" }.to_string(),
                format!("{map_out}"),
                format!("{shuffled}"),
                format!("{}", out.counters.get(names::SHUFFLE_BATCHES)),
                format!("{wall:.1}"),
            ]);
            outputs.push(out.into_sorted_output());
        }
        assert_eq!(
            outputs[0],
            outputs[1],
            "combining changed local {} output",
            engine_label(&engine)
        );
    }
    print!(
        "{}",
        table(
            &[
                "engine",
                "combiner",
                "map records",
                "shuffle records",
                "batches",
                "wall (ms)"
            ],
            &rows
        )
    );
    println!("\n(byte-exact output invariant verified on the real executor too)");
}
