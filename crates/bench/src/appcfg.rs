//! Per-application experiment configurations.
//!
//! Each application gets a workload generator, a calibrated [`CostModel`]
//! and a runner. Calibration targets the paper's testbed observations
//! (§6): WordCount maps on 3 GB finish between ~50 s and ~155 s, the
//! barrier reduce tail is ~30% of the job, Sort's reduce side does almost
//! nothing, Black-Scholes maps are short but funnel everything into one
//! reducer, and so on. Simulated record counts are scaled down; byte
//! volumes are nominal.

use mr_apps::blackscholes::BlackScholes;
use mr_apps::ga::GeneticAlgorithm;
use mr_apps::knn::KnnBarrierless;
use mr_apps::lastfm::UniqueListens;
use mr_apps::sort::Sort;
use mr_apps::wordcount::WordCount;
use mr_cluster::{ClusterParams, CostModel, FnInput, SimExecutor, SimReport};
use mr_core::{Engine, HashPartitioner, JobConfig, MemoryPolicy};
use mr_workloads::{
    GaWorkload, KnnWorkload, LastFmWorkload, PricingWorkload, SortWorkload, TextWorkload,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// 64 MB chunks: GB → chunk count.
pub fn chunks_for_gb(gb: f64) -> u64 {
    ((gb * 1024.0) / 64.0).round().max(1.0) as u64
}

/// The paper's cluster (§6) with the given seed.
pub fn testbed(seed: u64) -> ClusterParams {
    ClusterParams::paper_testbed(seed)
}

static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory under the system temp dir.
pub fn scratch() -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mr-bench-{}-{n}", std::process::id()))
}

/// Heap scaling for the WordCount memory experiments: maps the scaled-
/// down store footprint back to paper-scale JVM heap bytes, so Figure 5's
/// "240 MB threshold" and "~1.2 GB heap" are meaningful numbers.
pub const WC_HEAP_SCALE: f64 = 9200.0;

/// The paper's reducer heap limit (Figure 5's "maximum heap space").
pub const WC_HEAP_CAP: u64 = 1_200 << 20;

/// The paper's spill threshold in Figure 5(b).
pub const WC_SPILL_THRESHOLD: u64 = 240 << 20;

/// Condensed result of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    /// Job completion in simulated seconds (f64::NAN when failed).
    pub secs: f64,
    /// True when the job died (OOM).
    pub failed: bool,
    /// First map completion (mapper-slack start).
    pub first_map_done: f64,
    /// Last map completion.
    pub last_map_done: f64,
    /// Mapper slack (§3.2).
    pub mapper_slack: f64,
}

fn summarize<A: mr_core::Application>(r: &SimReport<A>) -> RunSummary {
    RunSummary {
        secs: r.outcome.completion_secs().unwrap_or(f64::NAN),
        failed: !r.outcome.is_completed(),
        first_map_done: r.first_map_done.as_secs_f64(),
        last_map_done: r.last_map_done.as_secs_f64(),
        mapper_slack: r.mapper_slack_secs(),
    }
}

// ------------------------------------------------------------- WordCount

/// WordCount workload: Zipf(1.0) text over a 50 k-word vocabulary.
pub fn wc_workload(seed: u64) -> TextWorkload {
    TextWorkload {
        seed,
        vocab: 50_000,
        zipf_s: 1.0,
        lines_per_chunk: 120,
        words_per_line: 8,
    }
}

/// WordCount cost model (Figure 4's timings: ~45 s maps, reduce tail
/// ~30% of the job at 3 GB / 40 reducers).
pub fn wc_costs() -> CostModel {
    CostModel {
        map_cpu_per_chunk: 45.0,
        shuffle_selectivity: 1.0,
        reduce_cpu_per_record: 5.0e-4,
        combine_cpu_per_record: 2.0e-4,
        absorb_extra_per_record: 0.0,
        kv_cpu_per_record: 0.03,
        sort_cpu_coeff: 3.2e-4,
        finalize_cpu_per_entry: 1.0e-3,
        snapshot_cpu_per_record: 2.0e-4,
        output_selectivity: 0.5,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    }
}

/// Runs WordCount at `gb` input with the given engine.
pub fn run_wordcount(gb: f64, reducers: usize, engine: Engine, seed: u64) -> SimReport<WordCount> {
    run_wordcount_with_combiner(
        gb,
        reducers,
        engine,
        seed,
        mr_core::CombinerPolicy::Disabled,
    )
}

/// Runs WordCount with an explicit map-side combining policy (the
/// `ablation_combiner` sweep's entry point).
pub fn run_wordcount_with_combiner(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    combiner: mr_core::CombinerPolicy,
) -> SimReport<WordCount> {
    run_wordcount_configured(gb, reducers, engine, seed, combiner, None)
}

/// Runs WordCount with the full knob set: combining policy plus an
/// optional cluster-level store-index override (the
/// `ablation_storeindex` sweep's entry point; `None` keeps the job
/// default, `StoreIndex::Hashed`).
pub fn run_wordcount_configured(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    combiner: mr_core::CombinerPolicy,
    store_index: Option<mr_core::StoreIndex>,
) -> SimReport<WordCount> {
    run_wordcount_full(gb, reducers, engine, seed, combiner, store_index, None)
}

/// Runs WordCount with a cluster-level snapshot policy (the
/// `fig_snapshot_accuracy` / `ablation_snapshot` entry point).
pub fn run_wordcount_snapshotted(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    snapshots: mr_core::SnapshotPolicy,
) -> SimReport<WordCount> {
    run_wordcount_full(
        gb,
        reducers,
        engine,
        seed,
        mr_core::CombinerPolicy::Disabled,
        None,
        Some(snapshots),
    )
}

/// The one WordCount setup every public variant delegates to.
fn run_wordcount_full(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    combiner: mr_core::CombinerPolicy,
    store_index: Option<mr_core::StoreIndex>,
    snapshots: Option<mr_core::SnapshotPolicy>,
) -> SimReport<WordCount> {
    let w = wc_workload(seed);
    let mut params = testbed(seed);
    params.combiner = combiner;
    params.store_index = store_index;
    params.snapshots = snapshots;
    let cfg = JobConfig::new(reducers)
        .engine(engine)
        .heap_scale(WC_HEAP_SCALE)
        .scratch_dir(scratch())
        .seed(seed);
    SimExecutor::new(params).run(
        &WordCount,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(gb),
        &cfg,
        &wc_costs(),
        &HashPartitioner,
    )
}

// ------------------------------------------------------------------ Sort

/// Sort workload: uniform u64 keys.
pub fn sort_workload(seed: u64) -> SortWorkload {
    SortWorkload {
        seed,
        records_per_chunk: 960,
        key_range: u64::MAX,
    }
}

/// Sort cost model: near-zero map/reduce work; the job is a race between
/// the framework merge sort and red-black-tree insertion (§6.1.1), which
/// the tree loses — `absorb_extra_per_record` is the insertion penalty.
pub fn sort_costs() -> CostModel {
    CostModel {
        map_cpu_per_chunk: 4.0,
        shuffle_selectivity: 1.0,
        reduce_cpu_per_record: 5.0e-4,
        combine_cpu_per_record: 0.0,
        absorb_extra_per_record: 2.0e-3,
        kv_cpu_per_record: 0.30,
        sort_cpu_coeff: 1.0e-4,
        finalize_cpu_per_entry: 2.0e-3,
        snapshot_cpu_per_record: 1.0e-4,
        output_selectivity: 1.0,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    }
}

/// Runs Sort at `gb` input.
pub fn run_sort(gb: f64, reducers: usize, engine: Engine, seed: u64) -> SimReport<Sort> {
    let w = sort_workload(seed);
    let cfg = JobConfig::new(reducers)
        .engine(engine)
        .scratch_dir(scratch())
        .seed(seed);
    SimExecutor::new(testbed(seed)).run(
        &Sort,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(gb),
        &cfg,
        &sort_costs(),
        &HashPartitioner,
    )
}

// ------------------------------------------------------------------- kNN

/// kNN workload: 400 distinct experimental values, 6 training values
/// per chunk (fan-out keeps the shuffle fat).
pub fn knn_workload(seed: u64) -> KnnWorkload {
    KnnWorkload {
        seed,
        experimental: 400,
        train_per_chunk: 6,
        value_range: 1_000_000,
    }
}

/// kNN cost model: compute-heavy maps (distance to every experimental
/// value), fat shuffle (fan-out × training records).
pub fn knn_costs() -> CostModel {
    CostModel {
        map_cpu_per_chunk: 40.0,
        shuffle_selectivity: 1.2,
        reduce_cpu_per_record: 1.0e-3,
        combine_cpu_per_record: 2.0e-4,
        absorb_extra_per_record: 2.0e-4,
        kv_cpu_per_record: 0.10,
        sort_cpu_coeff: 1.2e-4,
        finalize_cpu_per_entry: 2.0e-3,
        snapshot_cpu_per_record: 2.0e-4,
        output_selectivity: 0.05,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    }
}

/// Runs barrier-less-formulation kNN (which both engines can execute) at
/// `gb` input.
pub fn run_knn(gb: f64, reducers: usize, engine: Engine, seed: u64) -> SimReport<KnnBarrierless> {
    run_knn_full(gb, reducers, engine, seed, None).1
}

/// Runs kNN with a cluster-level snapshot policy, returning the app too
/// (its `snapshot_error` scores the estimates).
pub fn run_knn_snapshotted(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    snapshots: mr_core::SnapshotPolicy,
) -> (KnnBarrierless, SimReport<KnnBarrierless>) {
    run_knn_full(gb, reducers, engine, seed, Some(snapshots))
}

/// The one kNN setup every public variant delegates to.
fn run_knn_full(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    snapshots: Option<mr_core::SnapshotPolicy>,
) -> (KnnBarrierless, SimReport<KnnBarrierless>) {
    let w = knn_workload(seed);
    let app = KnnBarrierless {
        k: 10,
        experimental: w.experimental_set(),
    };
    let mut params = testbed(seed);
    params.snapshots = snapshots;
    let cfg = JobConfig::new(reducers)
        .engine(engine)
        .scratch_dir(scratch())
        .seed(seed);
    let report = SimExecutor::new(params).run(
        &app,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(gb),
        &cfg,
        &knn_costs(),
        &HashPartitioner,
    );
    (app, report)
}

// ---------------------------------------------------------------- Last.fm

/// Last.fm workload: the paper's 50 users × 5000 tracks.
pub fn lastfm_workload(seed: u64) -> LastFmWorkload {
    LastFmWorkload {
        seed,
        users: 50,
        tracks: 5000,
        listens_per_chunk: 400,
    }
}

/// Last.fm cost model: light maps, set-insertion reduces.
pub fn lastfm_costs() -> CostModel {
    CostModel {
        map_cpu_per_chunk: 25.0,
        shuffle_selectivity: 0.8,
        reduce_cpu_per_record: 6.0e-3,
        combine_cpu_per_record: 2.0e-3,
        absorb_extra_per_record: 0.0,
        kv_cpu_per_record: 0.20,
        sort_cpu_coeff: 2.5e-4,
        finalize_cpu_per_entry: 1.0e-3,
        snapshot_cpu_per_record: 1.0e-4,
        output_selectivity: 0.05,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    }
}

/// Runs Last.fm unique listens at `gb` input.
pub fn run_lastfm(gb: f64, reducers: usize, engine: Engine, seed: u64) -> SimReport<UniqueListens> {
    run_lastfm_full(gb, reducers, engine, seed, None)
}

/// Runs Last.fm unique listens with a cluster-level snapshot policy.
pub fn run_lastfm_snapshotted(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    snapshots: mr_core::SnapshotPolicy,
) -> SimReport<UniqueListens> {
    run_lastfm_full(gb, reducers, engine, seed, Some(snapshots))
}

/// The one Last.fm setup every public variant delegates to.
fn run_lastfm_full(
    gb: f64,
    reducers: usize,
    engine: Engine,
    seed: u64,
    snapshots: Option<mr_core::SnapshotPolicy>,
) -> SimReport<UniqueListens> {
    let w = lastfm_workload(seed);
    let mut params = testbed(seed);
    params.snapshots = snapshots;
    let cfg = JobConfig::new(reducers)
        .engine(engine)
        .scratch_dir(scratch())
        .seed(seed);
    SimExecutor::new(params).run(
        &UniqueListens,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(gb),
        &cfg,
        &lastfm_costs(),
        &HashPartitioner,
    )
}

// --------------------------------------------------------------------- GA

/// GA workload: 800 individuals per mapper slice (50 M nominal).
pub fn ga_workload(seed: u64) -> GaWorkload {
    GaWorkload::new(seed, 800)
}

/// GA cost model: heavy fitness maps, window reduces, full-volume output
/// ("performance is limited by the time spent writing intermediate data
/// … or the output", §6.1.5).
pub fn ga_costs() -> CostModel {
    CostModel {
        map_cpu_per_chunk: 45.0,
        shuffle_selectivity: 1.0,
        reduce_cpu_per_record: 4.0e-3,
        combine_cpu_per_record: 0.0,
        absorb_extra_per_record: 0.0,
        kv_cpu_per_record: 0.10,
        sort_cpu_coeff: 6.0e-4,
        finalize_cpu_per_entry: 0.0,
        snapshot_cpu_per_record: 1.0e-4,
        output_selectivity: 1.0,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    }
}

/// Runs the GA with `mappers` input slices.
pub fn run_ga(
    mappers: u64,
    reducers: usize,
    engine: Engine,
    seed: u64,
) -> SimReport<GeneticAlgorithm> {
    let w = ga_workload(seed);
    let cfg = JobConfig::new(reducers)
        .engine(engine)
        .scratch_dir(scratch())
        .seed(seed);
    SimExecutor::new(testbed(seed)).run(
        &GeneticAlgorithm::default(),
        &FnInput(move |c| w.chunk(c)),
        mappers,
        &cfg,
        &ga_costs(),
        &HashPartitioner,
    )
}

// ------------------------------------------------------------ Black-Scholes

/// Black-Scholes workload: 500 simulated iterations per mapper standing
/// in for the paper's 10⁶.
pub fn bs_workload(seed: u64) -> PricingWorkload {
    PricingWorkload::new(seed, 500)
}

/// Black-Scholes cost model: short maps, everything funnels into one
/// reducer whose barrier-mode sort over the entire stream is the cost
/// that the barrier-less version eliminates (§6.1.6).
pub fn bs_costs() -> CostModel {
    CostModel {
        map_cpu_per_chunk: 3.0,
        shuffle_selectivity: 0.25,
        reduce_cpu_per_record: 4.0e-4,
        combine_cpu_per_record: 0.0,
        absorb_extra_per_record: 0.0,
        kv_cpu_per_record: 0.01,
        sort_cpu_coeff: 7.0e-5,
        finalize_cpu_per_entry: 0.0,
        snapshot_cpu_per_record: 1.0e-4,
        output_selectivity: 1e-6,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    }
}

/// Runs Black-Scholes with `mappers` Monte-Carlo tasks and one reducer.
pub fn run_bs(mappers: u64, engine: Engine, seed: u64) -> SimReport<BlackScholes> {
    let w = bs_workload(seed);
    let cfg = JobConfig::new(1)
        .engine(engine)
        .scratch_dir(scratch())
        .seed(seed);
    SimExecutor::new(testbed(seed)).run(
        &BlackScholes,
        &FnInput(move |c| w.chunk(c)),
        mappers,
        &cfg,
        &bs_costs(),
        &HashPartitioner,
    )
}

// ----------------------------------------------------------- shared sweep

/// The six evaluated applications (Identity is omitted, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppId {
    /// §6.1.1 (Figure 6a).
    Sort,
    /// §6.1.2 (Figure 6b).
    WordCount,
    /// §6.1.3 (Figure 6c).
    Knn,
    /// §6.1.4 (Figure 6d).
    LastFm,
    /// §6.1.5 (Figure 6e).
    Ga,
    /// §6.1.6 (Figure 6f).
    Bs,
}

impl AppId {
    /// All six, in the paper's order.
    pub const ALL: [AppId; 6] = [
        AppId::Sort,
        AppId::WordCount,
        AppId::Knn,
        AppId::LastFm,
        AppId::Ga,
        AppId::Bs,
    ];

    /// Display name matching Figure 7's x labels.
    pub fn label(self) -> &'static str {
        match self {
            AppId::Sort => "Sort",
            AppId::WordCount => "WC",
            AppId::Knn => "KNN",
            AppId::LastFm => "PP",
            AppId::Ga => "GA",
            AppId::Bs => "BS",
        }
    }

    /// The x-axis sweep of the app's Figure 6 panel: input GB for the
    /// data-sized apps, mapper counts for GA and BS.
    pub fn sweep(self) -> Vec<f64> {
        match self {
            AppId::Ga => vec![30.0, 60.0, 120.0, 180.0, 240.0],
            AppId::Bs => vec![25.0, 50.0, 100.0, 150.0, 200.0],
            _ => vec![2.0, 4.0, 8.0, 12.0, 16.0],
        }
    }

    /// The x-axis caption of the app's panel.
    pub fn x_label(self) -> &'static str {
        match self {
            AppId::Ga => "number of mappers",
            AppId::Bs => "number of mappers (input size)",
            _ => "input data set (GB)",
        }
    }

    /// Runs the app at sweep point `x` under `engine`, returning a
    /// summary (completion seconds etc.).
    pub fn run(self, x: f64, engine: Engine, seed: u64) -> RunSummary {
        match self {
            AppId::Sort => summarize(&run_sort(x, 40, engine, seed)),
            AppId::WordCount => summarize(&run_wordcount(x, 40, engine, seed)),
            AppId::Knn => summarize(&run_knn(x, 40, engine, seed)),
            AppId::LastFm => summarize(&run_lastfm(x, 40, engine, seed)),
            AppId::Ga => summarize(&run_ga(x as u64, 40, engine, seed)),
            AppId::Bs => summarize(&run_bs(x as u64, engine, seed)),
        }
    }
}

/// The default barrier-less engine used across the figures.
pub fn barrierless() -> Engine {
    Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    }
}

// ------------------------------------------------- memory-management runs

/// The four configurations compared in Figures 9 and 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTechnique {
    /// Classic engine (no partial results at all).
    Barrier,
    /// Barrier-less, complete TreeMap in memory, hard heap cap.
    InMemory,
    /// Barrier-less, disk spill and merge at the paper's 240 MB threshold.
    SpillMerge,
    /// Barrier-less, disk-spilling KV store (BerkeleyDB stand-in).
    KvStore,
}

impl MemTechnique {
    /// All four, in the paper's legend order.
    pub const ALL: [MemTechnique; 4] = [
        MemTechnique::KvStore,
        MemTechnique::Barrier,
        MemTechnique::SpillMerge,
        MemTechnique::InMemory,
    ];

    /// Legend label, matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            MemTechnique::Barrier => "With barrier",
            MemTechnique::InMemory => "In-memory",
            MemTechnique::SpillMerge => "Spill merge",
            MemTechnique::KvStore => "BerkeleyDB-style KV",
        }
    }
}

/// Runs WordCount at `gb` input under one of the Figure 9/10 techniques.
/// The in-memory technique carries the paper's reducer heap cap and can
/// fail; the result reports that as `failed`.
pub fn run_wc_technique(gb: f64, reducers: usize, technique: MemTechnique) -> RunSummary {
    let w = wc_workload(42);
    let engine = match technique {
        MemTechnique::Barrier => Engine::Barrier,
        MemTechnique::InMemory => Engine::BarrierLess {
            memory: MemoryPolicy::InMemory,
        },
        MemTechnique::SpillMerge => Engine::BarrierLess {
            memory: MemoryPolicy::SpillMerge {
                threshold_bytes: WC_SPILL_THRESHOLD,
            },
        },
        MemTechnique::KvStore => Engine::BarrierLess {
            memory: MemoryPolicy::KvStore {
                cache_bytes: 64 << 10, // ~600 MB at the modelled scale
            },
        },
    };
    let mut cfg = JobConfig::new(reducers)
        .engine(engine)
        .heap_scale(WC_HEAP_SCALE)
        .scratch_dir(scratch())
        .seed(42);
    if technique == MemTechnique::InMemory {
        cfg.heap_cap_bytes = Some(WC_HEAP_CAP);
    }
    let report = SimExecutor::new(testbed(42)).run(
        &WordCount,
        &FnInput(move |c| w.chunk(c)),
        chunks_for_gb(gb),
        &cfg,
        &wc_costs(),
        &HashPartitioner,
    );
    summarize(&report)
}
