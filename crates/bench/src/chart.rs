//! Terminal chart rendering for the figure regenerators.

/// Renders a multi-series line chart as ASCII art.
///
/// Each series is `(label, points)`; points need not share x positions.
/// The chart scales both axes to the data and marks series with distinct
/// glyphs, mirroring the paper's "with barrier" / "without barrier"
/// two-line plots.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n  (no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
    let (y_min, mut y_max) = (0.0f64, f64::MIN);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("  {title}\n"));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("    {} {label}\n", GLYPHS[si % GLYPHS.len()]));
    }
    out.push_str(&format!("  {y_label}\n"));
    for (i, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let lab = if i % 4 == 0 {
            format!("{y_here:>8.0}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&format!("  {lab} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("  {:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "  {:>8}  {:<12}{:^}{:>12}\n",
        "",
        format!("{x_min:.0}"),
        x_label,
        format!("{x_max:.0}")
    ));
    out
}

/// Renders a labelled table row-by-row with aligned columns.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push_str(&fmt_row(
        widths.iter().map(|w| "-".repeat(*w)).collect(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Renders a box plot (one box per label) as ASCII, matching Figure 7.
pub fn box_plot(title: &str, boxes: &[(&str, crate::stats::BoxStats)], width: usize) -> String {
    let mut out = format!("  {title}\n");
    let lo = boxes
        .iter()
        .map(|(_, b)| b.min)
        .fold(f64::MAX, f64::min)
        .min(0.0);
    let hi = boxes.iter().map(|(_, b)| b.max).fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-9);
    let scale = |v: f64| (((v - lo) / span) * (width - 1) as f64).round() as usize;
    for (label, b) in boxes {
        let mut row = vec![' '; width];
        for cell in row[scale(b.min)..=scale(b.max)].iter_mut() {
            *cell = '-';
        }
        for cell in row[scale(b.q1)..=scale(b.q3)].iter_mut() {
            *cell = '=';
        }
        row[scale(b.median)] = '|';
        row[scale(b.min)] = '[';
        row[scale(b.max)] = ']';
        out.push_str(&format!(
            "  {:>6} {}  (med {:+.1}%)\n",
            label,
            row.iter().collect::<String>(),
            b.median
        ));
    }
    let zero = scale(0.0);
    let mut axis = vec![' '; width];
    axis[zero] = '0';
    out.push_str(&format!(
        "  {:>6} {}\n",
        "",
        axis.iter().collect::<String>()
    ));
    out.push_str(&format!(
        "  {:>6} {:<10}{:>w$}\n",
        "",
        format!("{lo:.0}%"),
        format!("{hi:.0}%"),
        w = width - 10
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BoxStats;

    #[test]
    fn line_chart_renders_without_panicking() {
        let s = line_chart(
            "test",
            "x",
            "y",
            &[
                ("a", vec![(0.0, 0.0), (10.0, 100.0)]),
                ("b", vec![(0.0, 50.0), (10.0, 50.0)]),
            ],
            40,
            10,
        );
        assert!(s.contains("test"));
        assert!(s.contains('*'));
        assert!(s.contains('+'));
    }

    #[test]
    fn line_chart_handles_empty_and_degenerate() {
        assert!(line_chart("e", "x", "y", &[], 10, 5).contains("no data"));
        let s = line_chart("one", "x", "y", &[("a", vec![(1.0, 1.0)])], 10, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["app", "secs"],
            &[
                vec!["wordcount".into(), "12.5".into()],
                vec!["bs".into(), "3".into()],
            ],
        );
        assert!(s.contains("wordcount"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn box_plot_marks_quartiles() {
        let b = BoxStats::from_values(&mut [1.0, 2.0, 3.0, 4.0, 10.0]);
        let s = box_plot("t", &[("x", b)], 40);
        assert!(s.contains('['));
        assert!(s.contains(']'));
        assert!(s.contains('|'));
    }
}
