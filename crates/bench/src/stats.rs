//! Five-number summaries for Figure 7's box plot.

/// Min / first quartile / median / third quartile / max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest observation (lower whisker).
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest observation (upper whisker).
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary, sorting `values` in place.
    ///
    /// Quartiles use linear interpolation between order statistics (R-7,
    /// the default of R and NumPy).
    pub fn from_values(values: &mut [f64]) -> BoxStats {
        assert!(!values.is_empty(), "need at least one observation");
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
        let q = |p: f64| -> f64 {
            let h = p * (values.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            values[lo] + (h - lo as f64) * (values[hi] - values[lo])
        };
        BoxStats {
            min: values[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: values[values.len() - 1],
        }
    }
}

/// Percentage improvement of `new` over `old` (positive = faster).
pub fn improvement_pct(old_secs: f64, new_secs: f64) -> f64 {
    (old_secs - new_secs) / old_secs * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_of_a_known_set() {
        let mut v = [2.0, 4.0, 6.0, 8.0, 10.0];
        let b = BoxStats::from_values(&mut v);
        assert_eq!(b.min, 2.0);
        assert_eq!(b.q1, 4.0);
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q3, 8.0);
        assert_eq!(b.max, 10.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let mut v = [1.0, 2.0, 3.0, 4.0];
        let b = BoxStats::from_values(&mut v);
        assert_eq!(b.median, 2.5);
        assert_eq!(b.q1, 1.75);
        assert_eq!(b.q3, 3.25);
    }

    #[test]
    fn single_observation() {
        let mut v = [7.0];
        let b = BoxStats::from_values(&mut v);
        assert_eq!(b.min, 7.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.median, 7.0);
    }

    #[test]
    fn improvement_signs() {
        assert_eq!(improvement_pct(100.0, 75.0), 25.0);
        assert!(improvement_pct(100.0, 109.0) < 0.0);
    }
}
