//! `mr-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! criterion microbenches (see `benches/`). This library holds what they
//! share: per-application experiment configurations calibrated to the
//! paper's testbed ([`appcfg`]), ASCII chart rendering ([`chart`]), and
//! box-plot statistics ([`stats`]).

pub mod appcfg;
pub mod chart;
pub mod stats;
