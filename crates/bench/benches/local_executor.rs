//! Wall-clock comparison of the two *real* (threaded) engines on
//! multicore: the local analogue of the paper's headline claim, with
//! genuine map→reduce pipelining instead of a simulated clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_apps::wordcount::WordCount;
use mr_core::local::LocalRunner;
use mr_core::{Engine, JobConfig};
use mr_workloads::TextWorkload;
use std::hint::black_box;

fn splits(chunks: u64) -> Vec<Vec<(u64, String)>> {
    let w = TextWorkload {
        seed: 9,
        vocab: 5_000,
        zipf_s: 1.0,
        lines_per_chunk: 400,
        words_per_line: 10,
    };
    (0..chunks).map(|c| w.chunk(c)).collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_executor");
    group.sample_size(10);
    let input = splits(16);
    for (name, engine) in [
        ("barrier", Engine::Barrier),
        ("barrierless", Engine::barrierless()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "wc-16chunks"), &input, |b, input| {
            let engine = engine.clone();
            b.iter(|| {
                let cfg = JobConfig::new(4).engine(engine.clone());
                let out = LocalRunner::new(4)
                    .run(&WordCount, input.clone(), &cfg)
                    .expect("job");
                black_box(out.record_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
