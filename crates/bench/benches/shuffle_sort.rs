//! The Figure 6(a) mechanism, isolated: the framework's merge sort vs
//! barrier-less ordered-map insertion, over the same record stream.
//!
//! The paper: "the original merge sort is faster than performing
//! insertions into a Red-Black Tree" — this bench shows the per-record
//! gap that makes Sort the one class where the barrier wins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn keys(n: usize) -> Vec<u64> {
    // Deterministic pseudo-random keys (splitmix-style), many duplicates.
    (0..n as u64)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z % (n as u64 / 2 + 1)
        })
        .collect()
}

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle_sort");
    for n in [1_000usize, 10_000, 100_000] {
        let data = keys(n);
        group.bench_with_input(BenchmarkId::new("merge_sort", n), &data, |b, data| {
            b.iter(|| {
                // The barrier engine: buffer all, then one stable sort.
                let mut buf = data.clone();
                buf.sort();
                black_box(buf.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("btree_counting", n), &data, |b, data| {
            b.iter(|| {
                // The barrier-less Sort app: per-record ordered-map upsert
                // (duplicates counted), then an ordered emission walk.
                let mut tree: BTreeMap<u64, u64> = BTreeMap::new();
                for &k in data {
                    *tree.entry(k).or_insert(0) += 1;
                }
                let mut emitted = 0usize;
                for (_k, count) in tree {
                    emitted += count as usize;
                }
                black_box(emitted)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
