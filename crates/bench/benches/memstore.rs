//! Per-operation throughput of the three partial-result stores (§5.3's
//! qualitative comparison, quantified): in-memory, spill-and-merge, and
//! the KV-backed store, driving the same WordCount absorb stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::engine::pipeline::reduce_partition_barrierless;
use mr_core::{Counters, Engine, JobConfig, MemoryPolicy};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

static SERIAL: AtomicU64 = AtomicU64::new(0);

fn records(n: usize, distinct: u64) -> Vec<(String, u64)> {
    (0..n as u64)
        .map(|i| (format!("key-{:06}", (i * 7919) % distinct), 1u64))
        .collect()
}

fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mr-bench-memstore-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("memstore");
    group.sample_size(10);
    let n = 20_000;
    let data = records(n, 4_000);
    let policies: Vec<(&str, MemoryPolicy)> = vec![
        ("inmemory", MemoryPolicy::InMemory),
        (
            "spill_merge",
            MemoryPolicy::SpillMerge {
                threshold_bytes: 64 << 10,
            },
        ),
        (
            "kvstore",
            MemoryPolicy::KvStore {
                cache_bytes: 128 << 10,
            },
        ),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::new(name, n), &data, |b, data| {
            let policy = policy.clone();
            b.iter(|| {
                let cfg = JobConfig::new(1)
                    .engine(Engine::BarrierLess {
                        memory: policy.clone(),
                    })
                    .scratch_dir(scratch());
                let (out, _) = reduce_partition_barrierless(
                    &BenchWordCount,
                    &cfg,
                    0,
                    data.clone(),
                    &mut Counters::new(),
                )
                .expect("store run");
                black_box(out.len())
            });
        });
    }
    group.finish();
}

/// Minimal WordCount for the store benches (kept local so the bench does
/// not depend on app-crate internals).
struct BenchWordCount;

impl mr_core::Application for BenchWordCount {
    type InKey = u64;
    type InValue = String;
    type MapKey = String;
    type MapValue = u64;
    type OutKey = String;
    type OutValue = u64;
    type State = u64;
    type Shared = ();

    fn map(&self, _k: &u64, v: &String, out: &mut dyn mr_core::Emit<String, u64>) {
        out.emit(v.clone(), 1);
    }
    fn new_shared(&self) {}
    fn reduce_grouped(
        &self,
        key: &String,
        values: Vec<u64>,
        _s: &mut (),
        out: &mut dyn mr_core::Emit<String, u64>,
    ) {
        out.emit(key.clone(), values.iter().sum());
    }
    fn init(&self, _key: &String) -> u64 {
        0
    }
    fn absorb(
        &self,
        _key: &String,
        state: &mut u64,
        value: u64,
        _s: &mut (),
        _out: &mut dyn mr_core::Emit<String, u64>,
    ) {
        *state += value;
    }
    fn merge(&self, _key: &String, a: u64, b: u64) -> u64 {
        a + b
    }
    fn finalize(
        &self,
        key: String,
        state: u64,
        _s: &mut (),
        out: &mut dyn mr_core::Emit<String, u64>,
    ) {
        out.emit(key, state);
    }
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
