//! Raw `mr-kvstore` operation throughput — the paper observed "about
//! 30,000 inserts per second" from BerkeleyDB JE and concluded that was
//! "not enough throughput to keep up with the millions of small records"
//! (§6.3). This bench measures our stand-in's puts, cached gets, and the
//! read-modify-update cycle the barrier-less reducer performs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mr_kvstore::{Store, StoreConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

static SERIAL: AtomicU64 = AtomicU64::new(0);

fn open(cache: usize) -> (Store, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "mr-bench-kv-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(StoreConfig::new(&dir).cache_bytes(cache)).unwrap();
    (store, dir)
}

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    let n: u64 = 10_000;
    group.throughput(Throughput::Elements(n));

    group.bench_function(BenchmarkId::new("put", n), |b| {
        b.iter_with_setup(
            || open(16 << 20),
            |(mut kv, dir)| {
                for i in 0..n {
                    kv.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
                }
                black_box(kv.len());
                drop(kv);
                std::fs::remove_dir_all(dir).ok();
            },
        );
    });

    group.bench_function(BenchmarkId::new("get_hot", n), |b| {
        let (mut kv, dir) = open(16 << 20);
        for i in 0..n {
            kv.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= kv.get(&i.to_le_bytes()).unwrap().unwrap()[0] as u64;
            }
            black_box(acc)
        });
        drop(kv);
        std::fs::remove_dir_all(dir).ok();
    });

    group.bench_function(BenchmarkId::new("get_cold_cache", n), |b| {
        // Cache holds ~5% of the working set: most gets hit the log file.
        let (mut kv, dir) = open(40 << 10);
        for i in 0..n {
            kv.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        kv.flush().unwrap();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= kv.get(&i.to_le_bytes()).unwrap().unwrap()[0] as u64;
            }
            black_box(acc)
        });
        drop(kv);
        std::fs::remove_dir_all(dir).ok();
    });

    group.bench_function(BenchmarkId::new("read_modify_update", n), |b| {
        // The barrier-less absorb cycle of §5.2.
        b.iter_with_setup(
            || open(1 << 20),
            |(mut kv, dir)| {
                for i in 0..n {
                    let key = (i % 500).to_le_bytes();
                    let prev = kv
                        .get(&key)
                        .unwrap()
                        .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                        .unwrap_or(0);
                    kv.put(&key, &(prev + 1).to_le_bytes()).unwrap();
                }
                black_box(kv.len());
                drop(kv);
                std::fs::remove_dir_all(dir).ok();
            },
        );
    });

    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
