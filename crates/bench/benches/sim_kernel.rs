//! Simulation-kernel throughput: event queue ops and processor-sharing
//! link updates — the substrate costs behind every figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mr_sim::{EventQueue, PsResource, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_event_queue");
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Scatter times with a cheap hash so heap order is real.
                    let t = (i.wrapping_mul(2654435761)) % 1_000_000;
                    q.schedule(SimTime::from_micros(t), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = q.pop() {
                    acc ^= e;
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_ps_resource(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_ps_link");
    for flows in [100u64, 10_000] {
        group.throughput(Throughput::Elements(flows));
        group.bench_with_input(BenchmarkId::new("add_drain", flows), &flows, |b, &flows| {
            b.iter(|| {
                let mut link = PsResource::new(1e9);
                for i in 0..flows {
                    let at = SimTime::from_micros(i * 3);
                    link.advance_to(at);
                    link.add_flow(at, 1_000 + (i % 977) * 17);
                }
                let mut done = 0usize;
                while let Some(t) = link.next_completion() {
                    done += link.advance_to(t).len();
                }
                black_box(done)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_ps_resource);
criterion_main!(benches);
