//! The absorb hot path, ordered vs hashed index (the tentpole A/B).
//!
//! Once the barrier is gone every shuffled record is one store probe, so
//! this microbench isolates exactly that: a WordCount-shaped record
//! stream absorbed into the in-memory store and the map-side combiner
//! buffer under `StoreIndex::Ordered` (the paper's TreeMap) and
//! `StoreIndex::Hashed` (FxHash + amortized sort-at-drain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_core::engine::pipeline::reduce_partition_barrierless;
use mr_core::{CombinerBuffer, Counters, Engine, JobConfig, MemoryPolicy, StoreIndex};
use std::hint::black_box;

fn records(n: usize, distinct: u64) -> Vec<(String, u64)> {
    (0..n as u64)
        .map(|i| (format!("key-{:06}", (i * 7919) % distinct), 1u64))
        .collect()
}

const INDEXES: [(&str, StoreIndex); 2] = [
    ("ordered", StoreIndex::Ordered),
    ("hashed", StoreIndex::Hashed),
];

fn bench_store_absorb(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_absorb");
    group.sample_size(10);
    let n = 20_000;
    let data = records(n, 4_000);
    for (name, index) in INDEXES {
        group.bench_with_input(BenchmarkId::new(name, n), &data, |b, data| {
            // Clone in setup so only the absorb stream is timed.
            b.iter_with_setup(
                || data.clone(),
                |records| {
                    let cfg = JobConfig::new(1)
                        .engine(Engine::BarrierLess {
                            memory: MemoryPolicy::InMemory,
                        })
                        .store_index(index);
                    let (out, _) = reduce_partition_barrierless(
                        &mr_apps::WordCount,
                        &cfg,
                        0,
                        records,
                        &mut Counters::new(),
                    )
                    .expect("absorb run");
                    black_box(out.len())
                },
            );
        });
    }
    group.finish();
}

fn bench_combiner_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("combiner_fold");
    group.sample_size(10);
    let n = 20_000;
    let data = records(n, 2_000);
    for (name, index) in INDEXES {
        group.bench_with_input(BenchmarkId::new(name, n), &data, |b, data| {
            b.iter_with_setup(
                || data.clone(),
                |records| {
                    let mut buf = CombinerBuffer::new(&mr_apps::WordCount, 1 << 20, index);
                    let mut sunk = 0u64;
                    for (k, v) in records {
                        buf.push(&mr_apps::WordCount, k, v, &mut |_, _| sunk += 1);
                    }
                    buf.drain(&mr_apps::WordCount, &mut |_, _| sunk += 1);
                    black_box(sunk)
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_absorb, bench_combiner_fold);
criterion_main!(benches);
