//! Property-based tests for the simulation kernel invariants.

use mr_sim::{EventQueue, FifoResource, PsResource, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO order
    /// among equal timestamps.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (t, i));
        }
        let mut last = (SimTime::ZERO, 0usize);
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            prop_assert!(at >= last.0);
            if at == last.0 {
                prop_assert!(i >= last.1, "FIFO violated at equal timestamps");
            }
            last = (at, i);
        }
    }

    /// A FIFO resource is work-conserving and never reorders: completion
    /// times are strictly non-decreasing and total service time equals
    /// total bytes over rate once saturated.
    #[test]
    fn fifo_completions_monotone(
        reqs in prop::collection::vec((0u64..5_000, 1u64..1_000_000), 1..100)
    ) {
        let rate = 1_000_000.0;
        let mut disk = FifoResource::new(rate);
        let mut arrivals: Vec<(u64, u64)> = reqs;
        arrivals.sort_by_key(|r| r.0);
        let mut prev = SimTime::ZERO;
        for &(at_us, bytes) in &arrivals {
            let done = disk.submit(SimTime::from_micros(at_us), bytes);
            prop_assert!(done >= prev, "FIFO reordering");
            prop_assert!(done >= SimTime::from_micros(at_us));
            prev = done;
        }
        let total: u64 = arrivals.iter().map(|r| r.1).sum();
        prop_assert_eq!(disk.total_bytes(), total);
        // Busy-until can never be earlier than serving everything back to back.
        let min_span = total as f64 / rate;
        let last_arrival = arrivals.last().unwrap().0 as f64 / 1e6;
        prop_assert!(disk.busy_until().as_secs_f64() + 1e-6 >= min_span.max(0.0));
        prop_assert!(disk.busy_until().as_secs_f64() >= last_arrival);
    }

    /// Processor sharing conserves work: after draining, served bytes equal
    /// submitted bytes, every flow completes exactly once, and completions
    /// never precede arrivals.
    #[test]
    fn ps_conserves_work(
        flows in prop::collection::vec((0u64..2_000_000, 1u64..4_000_000), 1..60)
    ) {
        let mut link = PsResource::new(8_000_000.0);
        let mut arrivals = flows;
        arrivals.sort_by_key(|f| f.0);
        let mut ids = Vec::new();
        let mut completed = Vec::new();
        for &(at_us, bytes) in &arrivals {
            let at = SimTime::from_micros(at_us);
            completed.extend(link.advance_to(at));
            ids.push((link.add_flow(at, bytes), at));
        }
        while let Some(t) = link.next_completion() {
            completed.extend(link.advance_to(t));
        }
        prop_assert_eq!(completed.len(), arrivals.len());
        // Each id appears exactly once.
        let mut seen = completed.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), completed.len());
        let total: u64 = arrivals.iter().map(|f| f.1).sum();
        let served = link.served_bytes();
        let rel = (served - total as f64).abs() / total as f64;
        prop_assert!(rel < 1e-3, "served {} submitted {}", served, total);
        prop_assert_eq!(link.active_flows(), 0);
    }

    /// A flow sharing with k others can never finish earlier than it would
    /// alone, and never later than if the link ran at rate/(k+1) throughout.
    #[test]
    fn ps_completion_bounds(extra in 0usize..10, bytes in 1u64..1_000_000) {
        let rate = 1_000_000.0;
        let mut link = PsResource::new(rate);
        let id = link.add_flow(SimTime::ZERO, bytes);
        for _ in 0..extra {
            // Competitors are large enough to outlive the observed flow.
            link.add_flow(SimTime::ZERO, bytes * 20 + 1_000_000);
        }
        let mut finish = None;
        while let Some(t) = link.next_completion() {
            let done = link.advance_to(t);
            if done.contains(&id) {
                finish = Some(t);
                break;
            }
        }
        let t = finish.expect("observed flow must finish").as_secs_f64();
        let solo = bytes as f64 / rate;
        let worst = bytes as f64 / (rate / (extra as f64 + 1.0));
        prop_assert!(t + 1e-6 >= solo, "{t} < solo {solo}");
        prop_assert!(t <= worst + 1e-3, "{t} > worst {worst}");
    }
}
