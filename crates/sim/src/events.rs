//! The event queue at the heart of the discrete-event loop.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of user-defined events.
///
/// Events scheduled for the same instant pop in FIFO order (a monotonically
/// increasing sequence number breaks ties), which makes simulations
/// deterministic regardless of heap internals.
///
/// The queue enforces *monotonicity*: scheduling an event earlier than the
/// last popped timestamp is a logic error in the caller's state machine and
/// panics rather than silently time-travelling.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// # Panics
    /// If `at` precedes the timestamp of the most recently popped event.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.pop();
        // Same instant as the popped event: fine (zero-latency follow-up).
        q.schedule(SimTime::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
