//! `mr-sim` — a small discrete-event simulation kernel.
//!
//! This crate is the timing substrate for the simulated cluster executor in
//! `mr-cluster`. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time, so
//!   event ordering is exact and runs are bit-for-bit reproducible.
//! * [`EventQueue`] — a monotonic priority queue of user events with FIFO
//!   tie-breaking at equal timestamps.
//! * [`FifoResource`] — a serialized bandwidth resource (a disk): requests
//!   are served one after another at a fixed byte rate.
//! * [`PsResource`] — an egalitarian processor-sharing bandwidth resource (a
//!   network link): all active flows progress simultaneously at `rate / n`.
//!
//! The kernel is deliberately *passive*: it never owns the main loop. The
//! caller pops events, advances resources, and schedules follow-ups. That
//! keeps arbitrary state machines (like a MapReduce job tracker) easy to
//! express without coroutines.
//!
//! ```
//! use mr_sim::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_secs_f64(1.0), "first");
//! q.schedule(SimTime::from_secs_f64(0.5), "zeroth");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(e, "zeroth");
//! assert_eq!(t, SimTime::from_secs_f64(0.5));
//! ```

mod events;
mod fifo;
mod ps;
mod time;

pub use events::EventQueue;
pub use fifo::FifoResource;
pub use ps::{FlowId, PsResource};
pub use time::{SimDuration, SimTime};
