//! Egalitarian processor-sharing bandwidth resource — the network-link model.
//!
//! All active flows on a link progress simultaneously at `rate / n`. This is
//! the standard fluid approximation of TCP fair sharing on a single
//! bottleneck, and is what makes shuffle transfers stretch when many mappers
//! feed one reducer.
//!
//! # Implementation
//!
//! The classic virtual-time construction: define `V(t)` with slope
//! `rate / n(t)` (bytes of per-flow service per second). A flow of `B` bytes
//! arriving when the virtual clock reads `V_a` completes exactly when
//! `V(t) = V_a + B`. Arrivals and departures only change the slope, so the
//! active set is an ordered map keyed by completion virtual time and every
//! operation is `O(log n)`.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Identifies a flow on one [`PsResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Ordered f64 wrapper so virtual times can key a BTreeMap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct VTime(f64);
impl Eq for VTime {}
impl PartialOrd for VTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for VTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A shared link serving all active flows at an equal per-flow rate.
#[derive(Debug)]
pub struct PsResource {
    rate: f64,
    /// Virtual clock: cumulative per-flow service, in bytes.
    v_now: f64,
    /// Real clock of the last state change, in (fractional) microseconds.
    last_us: f64,
    /// Active flows keyed by the virtual time at which they finish.
    active: BTreeMap<(VTime, u64), FlowId>,
    /// Reverse index for cancellation.
    by_id: BTreeMap<FlowId, (VTime, u64)>,
    next_id: u64,
    completed_flows: u64,
    completed_bytes: f64,
}

impl PsResource {
    /// A link with capacity `bytes_per_sec` (must be positive).
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        PsResource {
            rate: bytes_per_sec,
            v_now: 0.0,
            last_us: 0.0,
            active: BTreeMap::new(),
            by_id: BTreeMap::new(),
            next_id: 0,
            completed_flows: 0,
            completed_bytes: 0.0,
        }
    }

    /// Number of flows currently in service.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Starts a flow of `bytes` at time `now`.
    ///
    /// The caller must have already drained completions up to `now` with
    /// [`advance_to`](Self::advance_to); this is asserted.
    pub fn add_flow(&mut self, now: SimTime, bytes: u64) -> FlowId {
        let now_us = now.as_micros() as f64;
        assert!(
            now_us + 0.5 >= self.last_us,
            "add_flow at {now} precedes resource clock"
        );
        self.catch_up(now_us);
        let id = FlowId(self.next_id);
        let seq = self.next_id;
        self.next_id += 1;
        let key = (VTime(self.v_now + bytes as f64), seq);
        self.active.insert(key, id);
        self.by_id.insert(id, key);
        id
    }

    /// Cancels an in-flight flow, returning the bytes it still had left, or
    /// `None` if the flow already finished (or never existed).
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<u64> {
        self.catch_up(now.as_micros() as f64);
        let key = self.by_id.remove(&id)?;
        self.active.remove(&key);
        Some((key.0 .0 - self.v_now).max(0.0).round() as u64)
    }

    /// The real time at which the next flow will complete, if any.
    ///
    /// Exact under the invariant that the caller lets no arrival or
    /// departure happen before that instant without re-querying.
    pub fn next_completion(&self) -> Option<SimTime> {
        let ((vt, _), _) = self.active.first_key_value()?;
        let n = self.active.len() as f64;
        let dv = (vt.0 - self.v_now).max(0.0);
        let dt_us = dv * n / self.rate * 1e6;
        Some(SimTime::from_micros((self.last_us + dt_us).ceil() as u64))
    }

    /// Advances the link to real time `t`, returning every flow that
    /// finished at or before `t` in completion order.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<FlowId> {
        let t_us = t.as_micros() as f64;
        let mut done = Vec::new();
        // Flows may complete mid-interval, changing the slope for the rest;
        // peel them off one at a time.
        while let Some((&(vt, seq), &id)) = self.active.first_key_value() {
            let n = self.active.len() as f64;
            let dv = (vt.0 - self.v_now).max(0.0);
            let finish_us = self.last_us + dv * n / self.rate * 1e6;
            // Half-microsecond tolerance absorbs the ceil in next_completion.
            if finish_us > t_us + 0.5 {
                break;
            }
            self.completed_bytes += dv * n;
            self.v_now = vt.0;
            self.last_us = finish_us.min(t_us);
            self.active.remove(&(vt, seq));
            self.by_id.remove(&id);
            self.completed_flows += 1;
            done.push(id);
        }
        self.catch_up(t_us);
        done
    }

    /// Moves the virtual clock to real microsecond `t_us` with the current
    /// slope (no completions happen in the interval by construction).
    fn catch_up(&mut self, t_us: f64) {
        if t_us <= self.last_us {
            return;
        }
        if !self.active.is_empty() {
            let n = self.active.len() as f64;
            let dv = (t_us - self.last_us) / 1e6 * self.rate / n;
            self.v_now += dv;
            self.completed_bytes += dv * n;
        }
        self.last_us = t_us;
    }

    /// Lifetime count of completed flows.
    pub fn completed_flows(&self) -> u64 {
        self.completed_flows
    }

    /// Approximate bytes served so far (fluid model).
    pub fn served_bytes(&self) -> f64 {
        self.completed_bytes
    }

    /// Configured capacity in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn lone_flow_gets_full_rate() {
        let mut link = PsResource::new(MB as f64);
        link.add_flow(SimTime::ZERO, 3 * MB);
        let t = link.next_completion().unwrap();
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-3, "got {t}");
        let done = link.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn two_equal_flows_halve_the_rate() {
        let mut link = PsResource::new(MB as f64);
        link.add_flow(SimTime::ZERO, MB);
        link.add_flow(SimTime::ZERO, MB);
        // Each gets 0.5 MB/s, so both finish at t = 2 s.
        let t = link.next_completion().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-3, "got {t}");
        let done = link.advance_to(t);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn short_flow_departure_speeds_up_long_flow() {
        let mut link = PsResource::new(MB as f64);
        let long = link.add_flow(SimTime::ZERO, 2 * MB);
        let _short = link.add_flow(SimTime::ZERO, MB);
        // Shared until short finishes at t=2 (1MB at 0.5MB/s); long then has
        // 1 MB left at full rate -> finishes at t=3.
        let t1 = link.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-3);
        let done = link.advance_to(t1);
        assert_eq!(done.len(), 1);
        let t2 = link.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 3.0).abs() < 1e-3, "got {t2}");
        assert_eq!(link.advance_to(t2), vec![long]);
    }

    #[test]
    fn late_arrival_shares_from_its_arrival() {
        let mut link = PsResource::new(MB as f64);
        link.add_flow(SimTime::ZERO, 2 * MB);
        // After 1 s the first flow has 1 MB left.
        link.advance_to(secs(1.0));
        link.add_flow(secs(1.0), MB);
        // Both now have 1 MB at 0.5 MB/s -> both complete at t=3.
        let t = link.next_completion().unwrap();
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-3, "got {t}");
        assert_eq!(link.advance_to(t).len(), 2);
    }

    #[test]
    fn cancel_returns_remaining_bytes() {
        let mut link = PsResource::new(MB as f64);
        let id = link.add_flow(SimTime::ZERO, 4 * MB);
        link.advance_to(secs(1.0)); // 1 MB served
        let left = link.cancel(secs(1.0), id).unwrap();
        let err = (left as f64 - 3.0 * MB as f64).abs();
        assert!(err < 1024.0, "remaining {left}");
        assert_eq!(link.active_flows(), 0);
        assert_eq!(link.cancel(secs(1.0), id), None);
    }

    #[test]
    fn work_conservation_over_many_flows() {
        // Total service must equal capacity * busy time regardless of the
        // arrival pattern.
        let mut link = PsResource::new(10.0 * MB as f64);
        let mut clock = SimTime::ZERO;
        for i in 0..50u64 {
            clock = secs(i as f64 * 0.05);
            link.advance_to(clock);
            link.add_flow(clock, (i % 7 + 1) * MB / 4);
        }
        // Drain everything.
        while let Some(t) = link.next_completion() {
            link.advance_to(t);
            clock = t;
        }
        let total_in: u64 = (0..50u64).map(|i| (i % 7 + 1) * MB / 4).sum();
        let served = link.served_bytes();
        let err = (served - total_in as f64).abs() / total_in as f64;
        assert!(err < 1e-3, "served {served}, submitted {total_in}");
        assert_eq!(link.completed_flows(), 50);
        assert!(clock > SimTime::ZERO);
    }

    #[test]
    fn empty_link_has_no_completion() {
        let link = PsResource::new(1.0);
        assert_eq!(link.next_completion(), None);
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = PsResource::new(MB as f64);
        let id = link.add_flow(secs(1.0), 0);
        let t = link.next_completion().unwrap();
        assert_eq!(t, secs(1.0));
        assert_eq!(link.advance_to(t), vec![id]);
    }
}
