//! Integer-microsecond virtual time.
//!
//! Floating-point time makes event ordering platform- and
//! optimization-dependent; integer microseconds keep the heap ordering exact
//! while still resolving sub-millisecond network events.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from fractional seconds (saturating at zero for
    /// negative inputs).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (saturating at zero for
    /// negative inputs).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Time needed to move `bytes` at `bytes_per_sec`.
    ///
    /// A zero or negative rate is treated as "instantaneous" by returning a
    /// very large duration would stall the simulation, so it panics instead:
    /// rates are configuration and must be positive.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "resource rate must be positive, got {bytes_per_sec}"
        );
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor (heterogeneity, noise).
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "duration factor must be >= 0, got {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(12), SimDuration::from_secs(3));
        // Saturating subtraction: never goes negative.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            SimDuration::ZERO
        );
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(7);
        assert_eq!(u, SimTime::from_secs(7));
    }

    #[test]
    fn bytes_at_rate() {
        // 1 MB at 1 MB/s is exactly one second.
        let d = SimDuration::for_bytes(1_000_000, 1_000_000.0);
        assert_eq!(d, SimDuration::from_secs(1));
        // 64 MB at 60 MB/s ~ 1.0667 s.
        let d = SimDuration::for_bytes(64 << 20, 60.0 * (1 << 20) as f64);
        let s = d.as_secs_f64();
        assert!((s - 64.0 / 60.0).abs() < 1e-3, "got {s}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = SimDuration::for_bytes(1, 0.0);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_secs(15));
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "0.002s");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }
}
