//! Serialized bandwidth resource — the disk model.

use crate::time::{SimDuration, SimTime};

/// A resource that serves requests strictly one after another at a fixed
/// byte rate — the behaviour of a single spinning disk doing large
/// sequential transfers, which is how MapReduce uses local disks.
///
/// Because service is FIFO and the rate is constant, the completion time of
/// a request is known the moment it is submitted; no callback machinery is
/// needed. The caller schedules the returned completion instant on its own
/// [`EventQueue`](crate::EventQueue).
#[derive(Debug, Clone)]
pub struct FifoResource {
    bytes_per_sec: f64,
    /// The instant at which the device drains everything submitted so far.
    busy_until: SimTime,
    /// Total bytes ever submitted (for utilization reporting).
    total_bytes: u64,
}

impl FifoResource {
    /// A resource serving at `bytes_per_sec` (must be positive).
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        FifoResource {
            bytes_per_sec,
            busy_until: SimTime::ZERO,
            total_bytes: 0,
        }
    }

    /// Enqueues a transfer of `bytes` at time `now`; returns when it will
    /// complete. Requests queue behind all previously submitted work.
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + SimDuration::for_bytes(bytes, self.bytes_per_sec);
        self.busy_until = done;
        self.total_bytes += bytes;
        done
    }

    /// The instant the device becomes idle given everything submitted so far.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes submitted over the lifetime of the resource.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The configured service rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = FifoResource::new(MB as f64); // 1 MiB/s
        let done = d.submit(SimTime::from_secs(10), 2 * MB);
        assert_eq!(done, SimTime::from_secs(12));
    }

    #[test]
    fn requests_queue_behind_each_other() {
        let mut d = FifoResource::new(MB as f64);
        let a = d.submit(SimTime::ZERO, MB);
        let b = d.submit(SimTime::ZERO, MB);
        assert_eq!(a, SimTime::from_secs(1));
        assert_eq!(b, SimTime::from_secs(2));
    }

    #[test]
    fn gap_in_arrivals_leaves_idle_time() {
        let mut d = FifoResource::new(MB as f64);
        let a = d.submit(SimTime::ZERO, MB);
        assert_eq!(a, SimTime::from_secs(1));
        // Arrives after the device went idle: starts fresh.
        let b = d.submit(SimTime::from_secs(5), MB);
        assert_eq!(b, SimTime::from_secs(6));
        assert_eq!(d.busy_until(), SimTime::from_secs(6));
    }

    #[test]
    fn accounting() {
        let mut d = FifoResource::new(MB as f64);
        d.submit(SimTime::ZERO, 3 * MB);
        d.submit(SimTime::ZERO, 4 * MB);
        assert_eq!(d.total_bytes(), 7 * MB);
        assert_eq!(d.rate(), MB as f64);
    }

    #[test]
    fn zero_byte_request_completes_instantly() {
        let mut d = FifoResource::new(MB as f64);
        let done = d.submit(SimTime::from_secs(3), 0);
        assert_eq!(done, SimTime::from_secs(3));
    }
}
