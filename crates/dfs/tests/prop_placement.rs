//! Property tests for DFS placement invariants.

use mr_dfs::{Dfs, DfsConfig};
use mr_net::NodeId;
use proptest::prelude::*;

proptest! {
    /// Replicas are always distinct and exactly `replication` many; local
    /// reads are always honoured; chunk sizes sum to the file size.
    #[test]
    fn placement_invariants(
        nodes in 3usize..20,
        replication in 1usize..4,
        bytes in 1u64..4_000_000_000,
        seed in any::<u64>(),
    ) {
        let replication = replication.min(nodes);
        let chunk_bytes = 64u64 << 20;
        let mut fs = Dfs::new(
            DfsConfig { nodes, chunk_bytes, replication },
            seed,
        );
        let f = fs.create_file("data", bytes);
        let chunks = fs.file_chunks(f).to_vec();
        prop_assert_eq!(chunks.len() as u64, bytes.div_ceil(chunk_bytes));

        let mut total = 0u64;
        for &cid in &chunks {
            let chunk = fs.chunk(cid);
            total += chunk.bytes;
            prop_assert!(chunk.bytes <= chunk_bytes);
            // Distinct replicas, exact count.
            let mut reps = chunk.replicas.clone();
            reps.sort();
            reps.dedup();
            prop_assert_eq!(reps.len(), replication);
            // Every replica is a real node.
            prop_assert!(reps.iter().all(|r| (r.0 as usize) < nodes));
            // A holder reads locally; read sources are always replicas.
            let holder = chunk.replicas[0];
            prop_assert!(fs.read_source(cid, holder).local);
            for n in 0..nodes as u32 {
                let src = fs.read_source(cid, NodeId(n));
                prop_assert!(fs.chunk(cid).replicas.contains(&src.node));
                prop_assert_eq!(src.local, fs.is_local(cid, NodeId(n)));
            }
        }
        prop_assert_eq!(total, bytes);
        // Load accounting is consistent.
        let load_sum: u64 = fs.node_load().iter().sum();
        prop_assert_eq!(load_sum, (chunks.len() * replication) as u64);
    }

    /// Failing nodes one by one loses a chunk exactly when its last
    /// replica disappears, and never earlier.
    #[test]
    fn failures_lose_data_only_at_last_replica(
        kill_order in Just(()).prop_flat_map(|_| {
            prop::collection::vec(0u32..8, 8)
        }),
        seed in any::<u64>(),
    ) {
        let mut fs = Dfs::new(
            DfsConfig { nodes: 8, chunk_bytes: 64 << 20, replication: 3 },
            seed,
        );
        let f = fs.create_file("d", 20 * (64 << 20));
        let chunk_ids = fs.file_chunks(f).to_vec();
        let mut lost_total = 0usize;
        let mut killed = std::collections::HashSet::new();
        for victim in kill_order {
            if !killed.insert(victim) {
                continue;
            }
            let lost = fs.fail_node(NodeId(victim));
            lost_total += lost.len();
            for cid in lost {
                prop_assert!(fs.chunk(cid).replicas.is_empty());
            }
        }
        // Chunks still holding replicas were never reported lost.
        let surviving = chunk_ids
            .iter()
            .filter(|&&c| !fs.chunk(c).replicas.is_empty())
            .count();
        prop_assert_eq!(surviving + lost_total, chunk_ids.len());
    }
}
