//! `mr-dfs` — simulated distributed file system (HDFS stand-in).
//!
//! Models exactly what the MapReduce engines need from HDFS on the paper's
//! testbed: files split into fixed-size chunks (64 MB default), each chunk
//! replicated on `replication` distinct nodes (3 default), locality lookup
//! for the scheduler, and pipelined write placement for job output.
//!
//! Timing is *not* modelled here — the cluster executor charges disk and
//! network costs itself using the placement answers this crate returns.
//! Placement is seeded and fully deterministic.

mod placement;

pub use placement::{Chunk, ChunkId, Dfs, DfsConfig, FileId, ReadSource};
