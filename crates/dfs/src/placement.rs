//! Chunking and replica placement.

use mr_net::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies a chunk cluster-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

/// Identifies a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Static configuration of the file system.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Number of data nodes.
    pub nodes: usize,
    /// Chunk ("block") size in bytes; the paper's testbed used 64 MB.
    pub chunk_bytes: u64,
    /// Replication factor; the paper's testbed used 3.
    pub replication: usize,
}

impl DfsConfig {
    /// The paper's testbed settings over `nodes` data nodes.
    pub fn paper_defaults(nodes: usize) -> Self {
        DfsConfig {
            nodes,
            chunk_bytes: 64 << 20,
            replication: 3,
        }
    }
}

/// One replicated block of a file.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Cluster-wide id.
    pub id: ChunkId,
    /// Owning file.
    pub file: FileId,
    /// Position within the file.
    pub index: u32,
    /// Payload size (the final chunk of a file may be short).
    pub bytes: u64,
    /// Nodes holding a replica; always distinct.
    pub replicas: Vec<NodeId>,
}

/// Where a reader should fetch a chunk from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadSource {
    /// The replica to read.
    pub node: NodeId,
    /// True when the replica is on the reader itself (no network needed).
    pub local: bool,
}

struct FileMeta {
    #[allow(dead_code)]
    name: String,
    chunks: Vec<ChunkId>,
    bytes: u64,
}

/// The namenode: chunk metadata and placement policy.
pub struct Dfs {
    cfg: DfsConfig,
    files: Vec<FileMeta>,
    chunks: Vec<Chunk>,
    /// Replica count per node, for balance reporting.
    node_load: Vec<u64>,
    /// Which nodes are up; dead nodes never receive new replicas.
    alive: Vec<bool>,
    rng: StdRng,
}

impl Dfs {
    /// An empty file system with deterministic placement from `seed`.
    pub fn new(cfg: DfsConfig, seed: u64) -> Self {
        assert!(cfg.nodes >= 1, "need at least one node");
        assert!(
            cfg.replication >= 1 && cfg.replication <= cfg.nodes,
            "replication {} must be in 1..={}",
            cfg.replication,
            cfg.nodes
        );
        assert!(cfg.chunk_bytes > 0, "chunk size must be positive");
        Dfs {
            node_load: vec![0; cfg.nodes],
            alive: vec![true; cfg.nodes],
            files: Vec::new(),
            chunks: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xD15C_0000_0000_0001),
            cfg,
        }
    }

    /// Loads a file of `bytes` into the FS, chunking and placing replicas.
    pub fn create_file(&mut self, name: &str, bytes: u64) -> FileId {
        assert!(bytes > 0, "empty files are not useful to MapReduce");
        let id = FileId(self.files.len() as u32);
        let n_chunks = bytes.div_ceil(self.cfg.chunk_bytes);
        let mut chunk_ids = Vec::with_capacity(n_chunks as usize);
        for index in 0..n_chunks {
            let sz = if index == n_chunks - 1 {
                bytes - index * self.cfg.chunk_bytes
            } else {
                self.cfg.chunk_bytes
            };
            let cid = ChunkId(self.chunks.len() as u64);
            let replicas = self.place_replicas(None);
            for &r in &replicas {
                self.node_load[r.0 as usize] += 1;
            }
            self.chunks.push(Chunk {
                id: cid,
                file: id,
                index: index as u32,
                bytes: sz,
                replicas,
            });
            chunk_ids.push(cid);
        }
        self.files.push(FileMeta {
            name: name.to_string(),
            chunks: chunk_ids,
            bytes,
        });
        id
    }

    /// Chunk ids of `file`, in file order.
    pub fn file_chunks(&self, file: FileId) -> &[ChunkId] {
        &self.files[file.0 as usize].chunks
    }

    /// Total size of `file` in bytes.
    pub fn file_bytes(&self, file: FileId) -> u64 {
        self.files[file.0 as usize].bytes
    }

    /// Metadata for a chunk.
    pub fn chunk(&self, id: ChunkId) -> &Chunk {
        &self.chunks[id.0 as usize]
    }

    /// Picks the replica a task running on `reader` should fetch `id` from:
    /// the local replica when one exists, otherwise a deterministic
    /// round-robin choice among the replicas (standing in for HDFS's
    /// network-distance tie-break, which is irrelevant on one switch).
    pub fn read_source(&self, id: ChunkId, reader: NodeId) -> ReadSource {
        let chunk = self.chunk(id);
        if chunk.replicas.contains(&reader) {
            return ReadSource {
                node: reader,
                local: true,
            };
        }
        let pick = chunk.replicas[(id.0 as usize) % chunk.replicas.len()];
        ReadSource {
            node: pick,
            local: false,
        }
    }

    /// Whether any replica of `id` lives on `node`.
    pub fn is_local(&self, id: ChunkId, node: NodeId) -> bool {
        self.chunk(id).replicas.contains(&node)
    }

    /// Placement for a freshly written output block from `writer`:
    /// HDFS-style pipeline — first replica local, remaining on random
    /// distinct remote nodes.
    pub fn write_targets(&mut self, writer: NodeId) -> Vec<NodeId> {
        self.place_replicas(Some(writer))
    }

    /// Drops every replica stored on `node` (disk lost) and marks the
    /// node dead, so it never receives new replicas. Chunks that lose
    /// all replicas are reported back — the job must regenerate them
    /// (see [`Dfs::restore_chunk`]).
    pub fn fail_node(&mut self, node: NodeId) -> Vec<ChunkId> {
        if !self.alive[node.0 as usize] {
            return Vec::new();
        }
        self.alive[node.0 as usize] = false;
        let mut lost = Vec::new();
        for chunk in &mut self.chunks {
            let before = chunk.replicas.len();
            chunk.replicas.retain(|&r| r != node);
            if chunk.replicas.len() < before {
                self.node_load[node.0 as usize] -= 1;
                if chunk.replicas.is_empty() {
                    lost.push(chunk.id);
                }
            }
        }
        lost
    }

    /// Re-ingests a chunk whose replicas were all lost to failures,
    /// placing a fresh replica set on surviving nodes. Models the job
    /// driver re-loading that slice of the input from its external
    /// source (the paper's workloads are generated, so the source is
    /// always available); the ingest traffic itself is not charged to
    /// the simulated network.
    pub fn restore_chunk(&mut self, id: ChunkId) {
        assert!(
            self.chunks[id.0 as usize].replicas.is_empty(),
            "restore_chunk is only for fully lost chunks"
        );
        let replicas = self.place_replicas(None);
        for &r in &replicas {
            self.node_load[r.0 as usize] += 1;
        }
        self.chunks[id.0 as usize].replicas = replicas;
    }

    /// Replica count per node — for balance assertions and reporting.
    pub fn node_load(&self) -> &[u64] {
        &self.node_load
    }

    /// Total number of chunks in the namespace.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Samples `replication` distinct *alive* nodes by rejection (fewer
    /// when the cluster has shrunk below the replication factor), so
    /// placement stays uniform and never targets a failed node.
    fn place_replicas(&mut self, first: Option<NodeId>) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::with_capacity(self.cfg.replication);
        if let Some(f) = first {
            out.push(f);
        }
        let mut available = (0..self.cfg.nodes as u32)
            .map(NodeId)
            .filter(|n| self.alive[n.0 as usize] && !out.contains(n))
            .count();
        while out.len() < self.cfg.replication && available > 0 {
            let cand = NodeId(self.rng.gen_range(0..self.cfg.nodes as u32));
            if self.alive[cand.0 as usize] && !out.contains(&cand) {
                out.push(cand);
                available -= 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn dfs(nodes: usize) -> Dfs {
        Dfs::new(DfsConfig::paper_defaults(nodes), 7)
    }

    #[test]
    fn chunk_count_is_ceiling_division() {
        let mut fs = dfs(16);
        let f = fs.create_file("wiki", 3 * 1024 * MB); // 3 GB
        assert_eq!(fs.file_chunks(f).len(), 48);
        let g = fs.create_file("odd", 65 * MB); // 64 MB + 1 MB tail
        assert_eq!(fs.file_chunks(g).len(), 2);
        let chunks = fs.file_chunks(g).to_vec();
        assert_eq!(fs.chunk(chunks[0]).bytes, 64 * MB);
        assert_eq!(fs.chunk(chunks[1]).bytes, MB);
        assert_eq!(fs.file_bytes(g), 65 * MB);
    }

    #[test]
    fn replicas_are_distinct_and_exactly_r() {
        let mut fs = dfs(16);
        let f = fs.create_file("data", 1024 * MB);
        for &cid in fs.file_chunks(f) {
            let reps = &fs.chunk(cid).replicas;
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct: {reps:?}");
        }
    }

    #[test]
    fn read_prefers_local_replica() {
        let mut fs = dfs(16);
        let f = fs.create_file("data", 640 * MB);
        for &cid in fs.file_chunks(f) {
            let holder = fs.chunk(cid).replicas[1];
            let src = fs.read_source(cid, holder);
            assert!(src.local);
            assert_eq!(src.node, holder);
        }
    }

    #[test]
    fn remote_read_picks_a_replica() {
        let mut fs = dfs(16);
        let f = fs.create_file("data", 64 * MB);
        let cid = fs.file_chunks(f)[0];
        let outsider = (0..16u32)
            .map(NodeId)
            .find(|n| !fs.is_local(cid, *n))
            .expect("16 nodes, 3 replicas: outsider exists");
        let src = fs.read_source(cid, outsider);
        assert!(!src.local);
        assert!(fs.chunk(cid).replicas.contains(&src.node));
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let mut a = Dfs::new(DfsConfig::paper_defaults(16), 42);
        let mut b = Dfs::new(DfsConfig::paper_defaults(16), 42);
        let fa = a.create_file("x", 512 * MB);
        let fb = b.create_file("x", 512 * MB);
        for (&ca, &cb) in a.file_chunks(fa).iter().zip(b.file_chunks(fb)) {
            assert_eq!(a.chunk(ca).replicas, b.chunk(cb).replicas);
        }
        let mut c = Dfs::new(DfsConfig::paper_defaults(16), 43);
        let fc = c.create_file("x", 512 * MB);
        let differs = a
            .file_chunks(fa)
            .iter()
            .zip(c.file_chunks(fc))
            .any(|(&ca, &cc)| a.chunk(ca).replicas != c.chunk(cc).replicas);
        assert!(differs, "different seeds should place differently");
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let mut fs = dfs(16);
        fs.create_file("big", 16 * 1024 * MB); // 256 chunks * 3 replicas
        let load = fs.node_load();
        let total: u64 = load.iter().sum();
        assert_eq!(total, 256 * 3);
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        // Uniform random placement: expect ~48 per node; allow generous slack.
        assert!(min >= 20 && max <= 80, "unbalanced placement: {load:?}");
    }

    #[test]
    fn write_targets_start_local() {
        let mut fs = dfs(16);
        let targets = fs.write_targets(NodeId(5));
        assert_eq!(targets.len(), 3);
        assert_eq!(targets[0], NodeId(5));
        let mut sorted = targets.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn node_failure_drops_replicas() {
        let mut fs = Dfs::new(
            DfsConfig {
                nodes: 4,
                chunk_bytes: 64 * MB,
                replication: 2,
            },
            1,
        );
        let f = fs.create_file("d", 640 * MB);
        let lost = fs.fail_node(NodeId(2));
        // With replication 2 over 4 nodes, losing one node must not lose
        // data unless both replicas coincided — they can't, they're distinct.
        assert!(lost.is_empty());
        for &cid in fs.file_chunks(f) {
            assert!(!fs.chunk(cid).replicas.contains(&NodeId(2)));
        }
        // Now kill the remaining holders; every chunk must eventually report
        // lost exactly once, at whichever failure removes its last replica.
        let mut lost = Vec::new();
        lost.extend(fs.fail_node(NodeId(0)));
        lost.extend(fs.fail_node(NodeId(1)));
        lost.extend(fs.fail_node(NodeId(3)));
        lost.sort();
        lost.dedup();
        assert_eq!(lost.len(), fs.file_chunks(f).len());
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn replication_cannot_exceed_nodes() {
        let _ = Dfs::new(
            DfsConfig {
                nodes: 2,
                chunk_bytes: 1,
                replication: 3,
            },
            0,
        );
    }
}
