//! The central correctness claim of the paper (§3.2): "since our
//! modifications were idempotent, the correctness and the completeness of
//! the MapReduce execution is not compromised."
//!
//! Property-based: for arbitrary inputs, every engine × memory-policy ×
//! store-index combination must produce identical output — and, for
//! combinable applications, identical output with the map-side combiner
//! on or off. The store-index axis is the tentpole's invariant: the
//! hashed (sort-at-drain) index must be byte-indistinguishable from the
//! paper's ordered map everywhere, combiner included.

use barrier_mapreduce::apps::{Sort, TopK, UniqueListens, WordCount};
use barrier_mapreduce::cluster::{ClusterParams, CostModel, FnInput, SimExecutor};
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{
    ChainSpec, ChainableApplication, CombinerPolicy, Engine, HandoffMode, HashPartitioner,
    JobConfig, MemoryPolicy, SnapshotPolicy, SpeculationPolicy, StoreIndex,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

static SERIAL: AtomicU64 = AtomicU64::new(0);

fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mr-eq-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ))
}

fn all_engines() -> Vec<Engine> {
    vec![
        Engine::Barrier,
        Engine::BarrierLess {
            memory: MemoryPolicy::InMemory,
        },
        Engine::BarrierLess {
            memory: MemoryPolicy::SpillMerge {
                threshold_bytes: 700,
            },
        },
        Engine::BarrierLess {
            memory: MemoryPolicy::KvStore { cache_bytes: 512 },
        },
    ]
}

/// Combiner settings swept against every engine: off, on with the
/// default budget, and on with a budget so small every push drains
/// (multiple partials per key cross the shuffle).
fn combiner_settings() -> Vec<CombinerPolicy> {
    vec![
        CombinerPolicy::Disabled,
        CombinerPolicy::enabled(),
        CombinerPolicy::Enabled { budget_bytes: 1 },
    ]
}

/// The store-index axis of the matrix.
const INDEXES: [StoreIndex; 2] = [StoreIndex::Ordered, StoreIndex::Hashed];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wordcount_all_engines_agree(
        words in prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..8), 1..12),
        reducers in 1usize..5,
    ) {
        let splits: Vec<Vec<(u64, String)>> = words
            .iter()
            .enumerate()
            .map(|(i, line)| vec![(i as u64, line.join(" "))])
            .collect();
        let mut reference: BTreeMap<String, u64> = BTreeMap::new();
        for line in &words {
            for w in line {
                *reference.entry(w.clone()).or_insert(0) += 1;
            }
        }
        // The pool axis: every width must agree with every other (the
        // worker pool multiplexes task state machines without touching
        // what they compute).
        for engine in all_engines() {
            for combiner in combiner_settings() {
                for index in INDEXES {
                    for workers in [1usize, 2, 4] {
                        let cfg = JobConfig::new(reducers)
                            .engine(engine.clone())
                            .combiner(combiner)
                            .store_index(index)
                            .pool_workers(workers)
                            .scratch_dir(scratch());
                        let out = LocalRunner::new(2).run(&WordCount, splits.clone(), &cfg).unwrap();
                        let got: BTreeMap<String, u64> =
                            out.into_sorted_output().into_iter().collect();
                        prop_assert_eq!(
                            &got, &reference,
                            "engine {:?} combiner {:?} index {:?} workers {}",
                            engine, combiner, index, workers
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sort_all_engines_agree_and_are_sorted(
        keys in prop::collection::vec(0u64..50, 1..200),
    ) {
        let splits: Vec<Vec<(u64, u64)>> = keys
            .chunks(20)
            .map(|c| c.iter().enumerate().map(|(i, &k)| (i as u64, k)).collect())
            .collect();
        let mut expect = keys.clone();
        expect.sort();
        for engine in all_engines() {
            for index in INDEXES {
                let cfg = JobConfig::new(1)
                    .engine(engine.clone())
                    .store_index(index)
                    .scratch_dir(scratch());
                let out = LocalRunner::new(2).run(&Sort, splits.clone(), &cfg).unwrap();
                let got: Vec<u64> = out.partitions[0].iter().map(|(k, _)| *k).collect();
                prop_assert_eq!(&got, &expect, "engine {:?} index {:?}", engine, index);
            }
        }
    }

    #[test]
    fn unique_listens_all_engines_agree(
        listens in prop::collection::vec((0u32..20, 0u32..15), 1..300),
    ) {
        let splits: Vec<Vec<(u64, (u32, u32))>> = listens
            .chunks(50)
            .map(|c| c.iter().enumerate().map(|(i, &l)| (i as u64, l)).collect())
            .collect();
        let mut sets: BTreeMap<u32, std::collections::HashSet<u32>> = BTreeMap::new();
        for &(user, track) in &listens {
            sets.entry(track).or_default().insert(user);
        }
        let reference: BTreeMap<u32, u64> =
            sets.into_iter().map(|(t, s)| (t, s.len() as u64)).collect();
        for engine in all_engines() {
            for combiner in combiner_settings() {
                for index in INDEXES {
                    let cfg = JobConfig::new(3)
                        .engine(engine.clone())
                        .combiner(combiner)
                        .store_index(index)
                        .scratch_dir(scratch());
                    let out = LocalRunner::new(2)
                        .run(&UniqueListens, splits.clone(), &cfg)
                        .unwrap();
                    let got: BTreeMap<u32, u64> = out.into_sorted_output().into_iter().collect();
                    prop_assert_eq!(
                        &got, &reference,
                        "engine {:?} combiner {:?} index {:?}", engine, combiner, index
                    );
                }
            }
        }
    }

    /// Snapshot determinism, swept across the whole matrix: for every
    /// engine × memory-policy × store-index × combiner combination,
    /// enabling snapshots — including the pathological every-1-record
    /// policy, which snapshots after *each* absorbed record — leaves the
    /// final output byte-identical to the snapshot-free run, and every
    /// published snapshot is key-sorted, duplicate-free and
    /// self-consistent (its counts never exceed the final counts, and a
    /// periodic run's last snapshot IS the final answer).
    #[test]
    fn snapshots_never_change_final_output_anywhere(
        words in prop::collection::vec(prop::collection::vec("[a-d]{1,3}", 1..8), 1..8),
        reducers in 1usize..4,
    ) {
        let splits: Vec<Vec<(u64, String)>> = words
            .iter()
            .enumerate()
            .map(|(i, line)| vec![(i as u64, line.join(" "))])
            .collect();
        for engine in all_engines() {
            for combiner in [CombinerPolicy::Disabled, CombinerPolicy::enabled()] {
                for index in INDEXES {
                    let run = |snapshots: SnapshotPolicy| {
                        let cfg = JobConfig::new(reducers)
                            .engine(engine.clone())
                            .combiner(combiner)
                            .store_index(index)
                            .snapshots(snapshots)
                            .scratch_dir(scratch());
                        LocalRunner::new(2).run(&WordCount, splits.clone(), &cfg).unwrap()
                    };
                    let plain = run(SnapshotPolicy::Disabled);
                    let snapped = run(SnapshotPolicy::EveryRecords { records: 1 });
                    prop_assert_eq!(
                        &plain.partitions, &snapped.partitions,
                        "snapshots changed output: {:?} {:?} {:?}", engine, combiner, index
                    );
                    prop_assert_eq!(plain.snapshot_count(), 0);
                    prop_assert!(snapped.snapshot_count() > 0);
                    for (r, snaps) in snapped.snapshots.iter().enumerate() {
                        let truth: BTreeMap<&String, u64> =
                            snapped.partitions[r].iter().map(|(k, v)| (k, *v)).collect();
                        for snap in snaps {
                            prop_assert_eq!(snap.reducer, r);
                            for pair in snap.estimate.windows(2) {
                                prop_assert!(
                                    pair[0].0 < pair[1].0,
                                    "unsorted/duplicated snapshot under {:?} {:?}", engine, index
                                );
                            }
                            for (word, count) in &snap.estimate {
                                let fin = truth.get(word).copied().unwrap_or(0);
                                prop_assert!(
                                    *count <= fin,
                                    "snapshot overcounts {} ({} > {})", word, count, fin
                                );
                            }
                        }
                        // Sequence numbers are strictly increasing.
                        for pair in snaps.windows(2) {
                            prop_assert!(pair[0].seq < pair[1].seq);
                        }
                        if engine != Engine::Barrier {
                            let last = snaps.last().expect("final snapshot");
                            prop_assert_eq!(&last.estimate, &snapped.partitions[r]);
                        }
                    }
                }
            }
        }
    }

    /// The chain invariant (ISSUE 5's acceptance sweep): for every
    /// chain-handoff mode × stage-engine × store-index × combiner
    /// combination, the chained `wordcount → top-k` output is
    /// byte-identical to running the same two jobs sequentially to
    /// completion by hand.
    #[test]
    fn chained_jobs_match_running_them_sequentially(
        words in prop::collection::vec(prop::collection::vec("[a-f]{1,3}", 1..8), 1..10),
        reducers in 1usize..4,
        k in 1usize..6,
    ) {
        let splits: Vec<Vec<(u64, String)>> = words
            .iter()
            .enumerate()
            .map(|(i, line)| vec![(i as u64, line.join(" "))])
            .collect();
        let topk = TopK::new(k);
        for engine in all_engines() {
            for index in INDEXES {
                for combiner in [CombinerPolicy::Disabled, CombinerPolicy::enabled()] {
                    let cfg1 = JobConfig::new(reducers)
                        .engine(engine.clone())
                        .combiner(combiner)
                        .store_index(index)
                        .scratch_dir(scratch());
                    let cfg2 = JobConfig::new(2)
                        .engine(engine.clone())
                        .store_index(index)
                        .scratch_dir(scratch());
                    // Sequential baseline: job 1 to completion, adapt,
                    // job 2 to completion.
                    let out1 = LocalRunner::new(2)
                        .run(&WordCount, splits.clone(), &cfg1)
                        .unwrap();
                    let splits2: Vec<Vec<(String, u64)>> = out1
                        .partitions
                        .into_iter()
                        .map(|p| {
                            p.into_iter()
                                .map(|(w, c)| topk.adapt_input(w, c))
                                .collect()
                        })
                        .collect();
                    let expect = LocalRunner::new(2)
                        .run(&topk, splits2, &cfg2)
                        .unwrap()
                        .partitions;
                    // Pool widths sweep with the handoff mode: streaming
                    // chains share one pool across both stages, so the
                    // width axis exercises cross-stage multiplexing.
                    for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
                        for workers in [1usize, 3] {
                            let spec = ChainSpec::new(vec![
                                cfg1.clone().pool_workers(workers),
                                cfg2.clone().pool_workers(workers),
                            ])
                            .handoff(handoff);
                            let got = LocalRunner::new(2)
                                .run_chain2(
                                    &WordCount,
                                    &topk,
                                    splits.clone(),
                                    &spec,
                                    &HashPartitioner,
                                    &HashPartitioner,
                                )
                                .unwrap();
                            prop_assert_eq!(
                                &got.output.partitions, &expect,
                                "chain {:?}/{}w diverged from sequential under {:?} {:?} {:?}",
                                handoff, workers, engine, index, combiner
                            );
                        }
                    }
                }
            }
        }
    }

    /// The byte-exact invariant, stated directly: for every engine ×
    /// store-policy × store-index combination, the *entire* output (keys
    /// and values, canonical order) with combining enabled equals the
    /// output with combining disabled — not merely "both match a
    /// reference" — and flipping the index never changes a byte either.
    #[test]
    fn wordcount_combiner_on_off_byte_identical(
        words in prop::collection::vec(prop::collection::vec("[a-f]{1,4}", 1..10), 1..10),
        reducers in 1usize..4,
    ) {
        let splits: Vec<Vec<(u64, String)>> = words
            .iter()
            .enumerate()
            .map(|(i, line)| vec![(i as u64, line.join(" "))])
            .collect();
        for engine in all_engines() {
            let run = |combiner: CombinerPolicy, index: StoreIndex| {
                let cfg = JobConfig::new(reducers)
                    .engine(engine.clone())
                    .combiner(combiner)
                    .store_index(index)
                    .scratch_dir(scratch());
                LocalRunner::new(2)
                    .run(&WordCount, splits.clone(), &cfg)
                    .unwrap()
                    .into_sorted_output()
            };
            let plain = run(CombinerPolicy::Disabled, StoreIndex::Ordered);
            for index in INDEXES {
                for combiner in [
                    CombinerPolicy::Disabled,
                    CombinerPolicy::enabled(),
                    CombinerPolicy::Enabled { budget_bytes: 1 },
                ] {
                    if index == StoreIndex::Ordered && combiner == CombinerPolicy::Disabled {
                        continue; // that exact run *is* the `plain` baseline
                    }
                    let got = run(combiner, index);
                    prop_assert_eq!(
                        &got, &plain,
                        "combiner {:?} index {:?} changed output under {:?}",
                        combiner, index, engine
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case spins a shared service pool per engine × width × tenant
    // combination, so a smaller case budget keeps this proportionate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The service-layer invariant: submitting arbitrary jobs through
    /// `serve` — any interleaving, any tenant assignment, any pool
    /// width — yields each job's output byte-identical to running that
    /// job alone. Contention, fair scheduling and queueing reshape the
    /// schedule, never the bytes.
    #[test]
    fn service_interleavings_match_solo_runs(
        jobs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..6), 1..5),
            2..5,
        ),
        reducers in 1usize..4,
    ) {
        use barrier_mapreduce::core::{serve, ServiceConfig};
        let job_splits: Vec<Vec<Vec<(u64, String)>>> = jobs
            .iter()
            .map(|lines| {
                lines
                    .iter()
                    .enumerate()
                    .map(|(i, line)| vec![(i as u64, line.join(" "))])
                    .collect()
            })
            .collect();
        for engine in all_engines() {
            let cfg = |workers: usize| {
                JobConfig::new(reducers)
                    .engine(engine.clone())
                    .pool_workers(workers)
                    .scratch_dir(scratch())
            };
            // Solo baseline, one job at a time on a private runner.
            let solo: Vec<_> = job_splits
                .iter()
                .map(|s| {
                    LocalRunner::new(2)
                        .run(&WordCount, s.clone(), &cfg(2))
                        .unwrap()
                        .partitions
                })
                .collect();
            for workers in [1usize, 2, 4] {
                for tenants in [1usize, 3] {
                    let svc_cfg = ServiceConfig::new(tenants).pool_workers(workers);
                    let (outs, report) = serve(
                        &WordCount,
                        &HashPartitioner,
                        &svc_cfg,
                        |svc| -> Vec<_> {
                            // Submit everything up front — maximal
                            // overlap — then wait in submission order.
                            let handles: Vec<_> = job_splits
                                .iter()
                                .enumerate()
                                .map(|(i, s)| {
                                    svc.submit(i % tenants, s.clone(), &cfg(workers)).unwrap()
                                })
                                .collect();
                            handles.into_iter().map(|h| h.wait().unwrap()).collect()
                        },
                    )
                    .unwrap();
                    prop_assert_eq!(report.admitted, job_splits.len() as u64);
                    prop_assert_eq!(report.completed, job_splits.len() as u64);
                    for (i, out) in outs.iter().enumerate() {
                        prop_assert_eq!(
                            &out.partitions, &solo[i],
                            "job {} diverged from its solo run under {:?}, {} workers, {} tenants",
                            i, engine, workers, tenants
                        );
                    }
                }
            }
        }
    }

    /// Straggler mitigation must be answer-invisible: on a heterogeneous
    /// simulated cluster (where the speed trigger genuinely fires), every
    /// engine × store-index × combiner combination produces byte-identical
    /// partitions with speculation on and off — the backup race resolves
    /// before any output is written, so losers can never leak records.
    #[test]
    fn speculation_never_changes_output_anywhere(
        words in prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..6), 4..10),
        reducers in 2usize..5,
        seed in 0u64..64,
    ) {
        let lines: Vec<String> = words.iter().map(|l| l.join(" ")).collect();
        let chunks = lines.len() as u64;
        for engine in all_engines() {
            for index in INDEXES {
                for combiner in [CombinerPolicy::Disabled, CombinerPolicy::enabled()] {
                    let run = |spec: SpeculationPolicy| {
                        let lines = lines.clone();
                        let mut params = ClusterParams::paper_testbed(seed);
                        params.nodes = 6;
                        params.map_slots = 2;
                        params.reduce_slots = 2;
                        params.hetero_sigma = 0.8;
                        let cfg = JobConfig::new(reducers)
                            .engine(engine.clone())
                            .combiner(combiner)
                            .store_index(index)
                            .speculation(spec)
                            .scratch_dir(scratch())
                            .seed(seed);
                        SimExecutor::new(params).run(
                            &WordCount,
                            &FnInput(move |c| vec![(c, lines[c as usize].clone())]),
                            chunks,
                            &cfg,
                            &CostModel::default_for_tests(),
                            &HashPartitioner,
                        )
                    };
                    let off = run(SpeculationPolicy::Disabled);
                    let on = run(SpeculationPolicy::enabled());
                    prop_assert!(off.outcome.is_completed());
                    prop_assert!(on.outcome.is_completed());
                    prop_assert_eq!(
                        &off.output.as_ref().expect("completed").partitions,
                        &on.output.as_ref().expect("completed").partitions,
                        "speculation changed output: {:?} {:?} {:?}",
                        engine, index, combiner
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case runs the full engine × index × width matrix three times
    // (cold baseline, cold cached, warm cached), so a smaller case
    // budget keeps this proportionate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shared-result-cache determinism bar: for every engine ×
    /// store-index × pool-width combination, a *warm* cached run (whole
    /// job and every split already resident) produces partitions
    /// byte-identical to the cold run, which in turn is byte-identical
    /// to an uncached run — the cache changes `cache.*` counters and
    /// nothing else.
    #[test]
    fn warm_cached_runs_are_byte_identical_to_cold(
        words in prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..6), 1..8),
        reducers in 1usize..4,
    ) {
        use barrier_mapreduce::core::counters::names;
        use barrier_mapreduce::core::{CacheBudget, SharedCache};
        let splits: Vec<Vec<(u64, String)>> = words
            .iter()
            .enumerate()
            .map(|(i, line)| vec![(i as u64, line.join(" "))])
            .collect();
        for engine in all_engines() {
            for index in INDEXES {
                for workers in [1usize, 2, 4] {
                    let cfg = JobConfig::new(reducers)
                        .engine(engine.clone())
                        .store_index(index)
                        .pool_workers(workers)
                        .cache(CacheBudget::enabled())
                        .scratch_dir(scratch());
                    let uncached = LocalRunner::new(2)
                        .run(&WordCount, splits.clone(), &cfg)
                        .unwrap();
                    let cache = SharedCache::new(64 << 20);
                    let cold = LocalRunner::new(2)
                        .run_cached(&WordCount, splits.clone(), &cfg, &HashPartitioner, &cache)
                        .unwrap();
                    let warm = LocalRunner::new(2)
                        .run_cached(&WordCount, splits.clone(), &cfg, &HashPartitioner, &cache)
                        .unwrap();
                    prop_assert_eq!(
                        &cold.partitions, &uncached.partitions,
                        "cold cached run diverged: {:?} {:?} {}w", engine, index, workers
                    );
                    prop_assert_eq!(
                        &warm.partitions, &uncached.partitions,
                        "warm cached run diverged: {:?} {:?} {}w", engine, index, workers
                    );
                    prop_assert!(
                        cold.counters.get(names::CACHE_MISSES) > 0,
                        "cold run must miss"
                    );
                    prop_assert!(
                        warm.counters.get(names::CACHE_HITS) > 0,
                        "warm run must hit: {:?} {:?} {}w", engine, index, workers
                    );
                    prop_assert_eq!(warm.counters.get(names::CACHE_MISSES), 0);
                }
            }
        }
    }

    /// Eviction pressure never corrupts answers: under a budget far too
    /// small to hold every artifact, repeated runs of several distinct
    /// jobs keep producing byte-identical output while the cache churns
    /// (evictions observed), and split-level hits still occur whenever
    /// an artifact happens to survive.
    #[test]
    fn eviction_pressure_keeps_outputs_byte_identical(
        seed_words in prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 2..6), 3..6),
        reducers in 1usize..3,
    ) {
        use barrier_mapreduce::core::{CacheBudget, SharedCache};
        // Several distinct jobs, each a rotation of the generated lines.
        let jobs: Vec<Vec<Vec<(u64, String)>>> = (0..4)
            .map(|rot| {
                seed_words
                    .iter()
                    .cycle()
                    .skip(rot)
                    .take(seed_words.len())
                    .enumerate()
                    .map(|(i, line)| vec![(i as u64, format!("{} r{rot}", line.join(" ")))])
                    .collect()
            })
            .collect();
        let cfg = JobConfig::new(reducers)
            .cache(CacheBudget::Limit { bytes: 600 })
            .scratch_dir(scratch());
        let baselines: Vec<_> = jobs
            .iter()
            .map(|s| {
                LocalRunner::new(2)
                    .run(&WordCount, s.clone(), &cfg)
                    .unwrap()
                    .partitions
            })
            .collect();
        // A cache that cannot hold everything at once.
        let cache = SharedCache::new(600);
        for round in 0..3 {
            for (i, splits) in jobs.iter().enumerate() {
                let out = LocalRunner::new(2)
                    .run_cached(&WordCount, splits.clone(), &cfg, &HashPartitioner, &cache)
                    .unwrap();
                prop_assert_eq!(
                    &out.partitions, &baselines[i],
                    "round {} job {} diverged under eviction pressure", round, i
                );
                prop_assert!(cache.used_bytes() <= cache.budget_bytes());
            }
        }
        let stats = cache.stats();
        prop_assert!(
            stats.evictions > 0 || stats.oversize > 0,
            "budget of 600 bytes must churn: {:?}", stats
        );
    }
}

/// The service-level sharing story: two tenants submitting the *same*
/// computation share one service-owned cache — the first run publishes,
/// the second tenant's identical job hits (whole-job artifact) and
/// returns byte-identical output, with the hit visible both in its
/// counters and in its tenant-stamped `CacheMark` trace events.
#[test]
fn tenants_share_cache_hits_through_the_service() {
    use barrier_mapreduce::core::counters::names;
    use barrier_mapreduce::core::{serve, CacheBudget, ServiceConfig, TraceQuery};
    let splits: Vec<Vec<(u64, String)>> = (0..4)
        .map(|s| {
            (0..6)
                .map(|l| (l as u64, format!("tok{} tok{}", (s + l) % 5, l % 3)))
                .collect()
        })
        .collect();
    let job_cfg = JobConfig::new(3).cache(CacheBudget::enabled());
    let svc_cfg = ServiceConfig::new(2)
        .pool_workers(2)
        .cache(CacheBudget::Limit { bytes: 32 << 20 });
    let (outs, _) = serve(&WordCount, &HashPartitioner, &svc_cfg, |svc| {
        // Sequential waits pin the order: tenant 0 publishes, tenant 1 hits.
        let first = svc
            .submit(0, splits.clone(), &job_cfg)
            .unwrap()
            .wait()
            .unwrap();
        let second = svc
            .submit(1, splits.clone(), &job_cfg)
            .unwrap()
            .wait()
            .unwrap();
        vec![first, second]
    })
    .unwrap();
    assert_eq!(
        outs[0].partitions, outs[1].partitions,
        "shared hit must not change bytes"
    );
    assert!(
        outs[0].counters.get(names::CACHE_MISSES) > 0,
        "first run computes"
    );
    assert_eq!(outs[0].counters.get(names::CACHE_HITS), 0);
    assert!(
        outs[1].counters.get(names::CACHE_HITS) >= 1,
        "second tenant hits"
    );
    assert_eq!(
        outs[1].counters.get(names::CACHE_MISSES),
        0,
        "whole-job artifact hit"
    );
    assert_eq!(
        outs[1].counters.get(names::MAP_OUTPUT_RECORDS),
        0,
        "a whole-job hit maps nothing"
    );
    // The hit is attributed to the right tenant in the trace.
    let q = TraceQuery::new(&outs[1].trace);
    let marks = q.tenant_cache_marks(1);
    assert!(
        !marks.is_empty(),
        "hit run records a tenant-stamped CacheMark"
    );
    assert!(marks.iter().any(|&(_, hits, _, _)| hits >= 1));
    let q0 = TraceQuery::new(&outs[0].trace);
    assert!(
        q0.tenant_cache_marks(1).is_empty(),
        "no cross-tenant mark leakage"
    );
    assert!(!q0.tenant_cache_marks(0).is_empty());
}

/// Review regression: the application *instance* is part of the cache
/// key. Two `Grep`s with different patterns over the same input, sharing
/// one cache, must each keep producing their own output — a warm run
/// must never serve the other configuration's artifacts.
#[test]
fn parameterized_instances_never_share_artifacts() {
    use barrier_mapreduce::apps::Grep;
    use barrier_mapreduce::core::counters::names;
    use barrier_mapreduce::core::{CacheBudget, SharedCache};
    let splits: Vec<Vec<(u64, String)>> = (0..3)
        .map(|s| {
            (0..5)
                .map(|l| {
                    let tag = if (s + l) % 2 == 0 { "foo" } else { "bar" };
                    (l as u64, format!("line{s}{l} {tag}"))
                })
                .collect()
        })
        .collect();
    let cfg = JobConfig::new(2).cache(CacheBudget::enabled());
    let runner = LocalRunner::new(2);
    let foo = Grep::new("foo");
    let bar = Grep::new("bar");
    let foo_base = runner.run(&foo, splits.clone(), &cfg).unwrap();
    let bar_base = runner.run(&bar, splits.clone(), &cfg).unwrap();
    assert_ne!(
        foo_base.partitions, bar_base.partitions,
        "patterns must select different lines for this test to bite"
    );
    let cache = SharedCache::new(16 << 20);
    let foo_cold = runner
        .run_cached(&foo, splits.clone(), &cfg, &HashPartitioner, &cache)
        .unwrap();
    let bar_cold = runner
        .run_cached(&bar, splits.clone(), &cfg, &HashPartitioner, &cache)
        .unwrap();
    assert_eq!(foo_cold.partitions, foo_base.partitions);
    assert_eq!(bar_cold.partitions, bar_base.partitions);
    assert_eq!(
        bar_cold.counters.get(names::CACHE_HITS),
        0,
        "bar must not hit foo's artifacts"
    );
    let foo_warm = runner
        .run_cached(&foo, splits.clone(), &cfg, &HashPartitioner, &cache)
        .unwrap();
    let bar_warm = runner
        .run_cached(&bar, splits, &cfg, &HashPartitioner, &cache)
        .unwrap();
    assert_eq!(foo_warm.partitions, foo_base.partitions);
    assert_eq!(bar_warm.partitions, bar_base.partitions);
    assert!(foo_warm.counters.get(names::CACHE_HITS) > 0);
    assert!(bar_warm.counters.get(names::CACHE_HITS) > 0);
}

/// A parameterized app *without* a `cache_identity` override cannot be
/// keyed safely: cached entry points run it correctly but bypass the
/// cache, surfacing the bypass as `cache.bypass.count`.
#[test]
fn unkeyed_parameterized_apps_bypass_the_cache() {
    use barrier_mapreduce::core::counters::names;
    use barrier_mapreduce::core::{Application, CacheBudget, Emit, SharedCache};

    struct NeedleTally {
        needle: String,
    }
    impl Application for NeedleTally {
        type InKey = u64;
        type InValue = String;
        type MapKey = String;
        type MapValue = u64;
        type OutKey = String;
        type OutValue = u64;
        type State = u64;
        type Shared = ();
        fn map(&self, _k: &u64, v: &String, out: &mut dyn Emit<String, u64>) {
            if v.contains(&self.needle) {
                out.emit(self.needle.clone(), 1);
            }
        }
        fn new_shared(&self) {}
        fn reduce_grouped(
            &self,
            key: &String,
            values: Vec<u64>,
            _s: &mut (),
            out: &mut dyn Emit<String, u64>,
        ) {
            out.emit(key.clone(), values.iter().sum());
        }
        fn init(&self, _k: &String) -> u64 {
            0
        }
        fn absorb(
            &self,
            _k: &String,
            st: &mut u64,
            v: u64,
            _s: &mut (),
            _o: &mut dyn Emit<String, u64>,
        ) {
            *st += v;
        }
        fn merge(&self, _k: &String, a: u64, b: u64) -> u64 {
            a + b
        }
        fn finalize(&self, k: String, st: u64, _s: &mut (), out: &mut dyn Emit<String, u64>) {
            out.emit(k, st);
        }
        // Deliberately NO cache_identity override.
    }

    let splits: Vec<Vec<(u64, String)>> = vec![vec![
        (0, "a foo b".into()),
        (1, "c bar d".into()),
        (2, "e foo f".into()),
    ]];
    let cfg = JobConfig::new(2).cache(CacheBudget::enabled());
    let runner = LocalRunner::new(2);
    let app = NeedleTally {
        needle: "foo".into(),
    };
    let baseline = runner.run(&app, splits.clone(), &cfg).unwrap();
    let cache = SharedCache::new(16 << 20);
    for _ in 0..2 {
        let out = runner
            .run_cached(&app, splits.clone(), &cfg, &HashPartitioner, &cache)
            .unwrap();
        assert_eq!(out.partitions, baseline.partitions);
        assert_eq!(out.counters.get(names::CACHE_BYPASS), 1, "typed bypass");
        assert_eq!(out.counters.get(names::CACHE_HITS), 0);
        assert_eq!(out.counters.get(names::CACHE_MISSES), 0);
    }
    assert!(cache.is_empty(), "nothing may be published under an incomplete key");
}

/// Review regression: a job with an enabled snapshot policy must keep
/// publishing its snapshot stream on warm runs — the whole-job artifact
/// (which skips the run, and with it every snapshot) is not used for
/// such jobs, while split artifacts still hit.
#[test]
fn snapshot_jobs_keep_snapshots_on_warm_runs() {
    use barrier_mapreduce::core::counters::names;
    use barrier_mapreduce::core::{CacheBudget, SharedCache};
    let splits: Vec<Vec<(u64, String)>> = (0..3)
        .map(|s| {
            (0..10)
                .map(|l| (l as u64, format!("w{} w{} w{}", (s + l) % 7, l % 5, l % 3)))
                .collect()
        })
        .collect();
    let cfg = JobConfig::new(2)
        .engine(Engine::BarrierLess {
            memory: MemoryPolicy::InMemory,
        })
        .snapshots(SnapshotPolicy::EveryRecords { records: 4 })
        .cache(CacheBudget::enabled());
    let runner = LocalRunner::new(2);
    let cache = SharedCache::new(16 << 20);
    let cold = runner
        .run_cached(&WordCount, splits.clone(), &cfg, &HashPartitioner, &cache)
        .unwrap();
    let warm = runner
        .run_cached(&WordCount, splits, &cfg, &HashPartitioner, &cache)
        .unwrap();
    assert!(cold.snapshot_count() > 0, "cold run publishes snapshots");
    assert_eq!(warm.partitions, cold.partitions, "bytes still identical");
    assert_eq!(
        warm.snapshot_count(),
        cold.snapshot_count(),
        "warm run must not lose the snapshot stream to a job-level hit"
    );
    assert!(
        warm.counters.get(names::CACHE_HITS) > 0,
        "split artifacts still hit"
    );
    assert!(
        warm.counters.get(names::MAP_OUTPUT_RECORDS) == 0,
        "split hits skip the map function"
    );
}

/// Same gate through the service: a snapshot-enabled job submitted by a
/// second tenant reuses split artifacts but still runs its reduce side,
/// so its snapshot stream survives.
#[test]
fn service_snapshot_jobs_keep_snapshots_on_shared_hits() {
    use barrier_mapreduce::core::counters::names;
    use barrier_mapreduce::core::{serve, CacheBudget, ServiceConfig};
    let splits: Vec<Vec<(u64, String)>> = (0..3)
        .map(|s| {
            (0..10)
                .map(|l| (l as u64, format!("tok{} tok{}", (s + l) % 5, l % 3)))
                .collect()
        })
        .collect();
    let job_cfg = JobConfig::new(2)
        .engine(Engine::BarrierLess {
            memory: MemoryPolicy::InMemory,
        })
        .snapshots(SnapshotPolicy::EveryRecords { records: 4 })
        .cache(CacheBudget::enabled());
    let svc_cfg = ServiceConfig::new(2)
        .pool_workers(2)
        .cache(CacheBudget::Limit { bytes: 32 << 20 });
    let (outs, _) = serve(&WordCount, &HashPartitioner, &svc_cfg, |svc| {
        let first = svc
            .submit(0, splits.clone(), &job_cfg)
            .unwrap()
            .wait()
            .unwrap();
        let second = svc
            .submit(1, splits.clone(), &job_cfg)
            .unwrap()
            .wait()
            .unwrap();
        vec![first, second]
    })
    .unwrap();
    assert_eq!(outs[0].partitions, outs[1].partitions);
    assert!(outs[0].snapshot_count() > 0);
    assert_eq!(
        outs[1].snapshot_count(),
        outs[0].snapshot_count(),
        "the sharing tenant keeps its snapshot stream"
    );
    assert!(
        outs[1].counters.get(names::CACHE_HITS) > 0,
        "split artifacts shared across tenants"
    );
}

/// Review regression: a job that dies mid-run (reducer OOM kills the
/// shuffle) must not publish truncated or misrouted split artifacts for
/// healthy future runs to hit.
#[test]
fn failed_jobs_never_poison_the_shared_cache() {
    use barrier_mapreduce::core::{CacheBudget, SharedCache};
    let splits: Vec<Vec<(u64, String)>> = (0..4)
        .map(|s| {
            (0..100)
                .map(|l| (l as u64, format!("w{} w{} w{}", (s + l) % 7, l % 5, l % 3)))
                .collect()
        })
        .collect();
    let engine = Engine::BarrierLess {
        memory: MemoryPolicy::InMemory,
    };
    // The heap cap and batch size are deliberately NOT part of the cache
    // key (artifacts are deterministic across them), so anything a dying
    // run publishes is visible to the healthy run below.
    let sick = JobConfig::new(2)
        .engine(engine.clone())
        .heap_cap(200)
        .shuffle_batch_bytes(1)
        .cache(CacheBudget::enabled())
        .scratch_dir(scratch());
    let healthy = JobConfig::new(2)
        .engine(engine)
        .cache(CacheBudget::enabled())
        .scratch_dir(scratch());
    let runner = LocalRunner::new(4);
    let baseline = runner.run(&WordCount, splits.clone(), &healthy).unwrap();
    let cache = SharedCache::new(16 << 20);
    for _ in 0..3 {
        let err = runner.run_cached(&WordCount, splits.clone(), &sick, &HashPartitioner, &cache);
        assert!(err.is_err(), "the 200-byte heap cap must OOM the job");
    }
    let warm = runner
        .run_cached(&WordCount, splits, &healthy, &HashPartitioner, &cache)
        .unwrap();
    assert_eq!(
        warm.partitions, baseline.partitions,
        "artifacts published by a dying run must be complete and correctly partitioned"
    );
}
