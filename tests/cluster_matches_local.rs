//! The simulated cluster executor and the real threaded executor must
//! produce identical job output for the same application and input — the
//! simulator runs real code, only its clock is virtual.

use barrier_mapreduce::apps::knn::KnnBarrierless;
use barrier_mapreduce::apps::{BlackScholes, WordCount};
use barrier_mapreduce::cluster::{ClusterParams, CostModel, FnInput, SimExecutor};
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{Engine, HashPartitioner, JobConfig};
use barrier_mapreduce::workloads::{KnnWorkload, PricingWorkload, TextWorkload};
use std::collections::BTreeMap;

fn small_cluster(seed: u64) -> ClusterParams {
    let mut p = ClusterParams::paper_testbed(seed);
    p.nodes = 5;
    p.map_slots = 2;
    p.reduce_slots = 2;
    p
}

#[test]
fn wordcount_sim_equals_local_both_engines() {
    let w = TextWorkload {
        seed: 3,
        vocab: 300,
        zipf_s: 1.0,
        lines_per_chunk: 50,
        words_per_line: 6,
    };
    let chunks = 10u64;
    let splits: Vec<Vec<(u64, String)>> = (0..chunks).map(|c| w.chunk(c)).collect();
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let cfg = JobConfig::new(4).engine(engine.clone());
        let local: BTreeMap<String, u64> = LocalRunner::new(4)
            .run(&WordCount, splits.clone(), &cfg)
            .unwrap()
            .into_sorted_output()
            .into_iter()
            .collect();
        let sim_report = SimExecutor::new(small_cluster(3)).run(
            &WordCount,
            &FnInput(|c| w.chunk(c)),
            chunks,
            &cfg,
            &CostModel::default_for_tests(),
            &HashPartitioner,
        );
        let sim: BTreeMap<String, u64> = sim_report
            .output
            .expect("sim completed")
            .into_sorted_output()
            .into_iter()
            .collect();
        assert_eq!(sim, local, "engine {engine:?}");
    }
}

#[test]
fn knn_sim_equals_local() {
    let w = KnnWorkload {
        seed: 5,
        experimental: 25,
        train_per_chunk: 80,
        value_range: 100_000,
    };
    let app = KnnBarrierless {
        k: 7,
        experimental: w.experimental_set(),
    };
    let chunks = 6u64;
    let splits: Vec<Vec<(u64, i64)>> = (0..chunks).map(|c| w.chunk(c)).collect();
    let cfg = JobConfig::new(3).engine(Engine::barrierless());
    let mut local = LocalRunner::new(4)
        .run(&app, splits, &cfg)
        .unwrap()
        .into_sorted_output();
    let mut sim = SimExecutor::new(small_cluster(5))
        .run(
            &app,
            &FnInput(|c| w.chunk(c)),
            chunks,
            &cfg,
            &CostModel::default_for_tests(),
            &HashPartitioner,
        )
        .output
        .expect("sim completed")
        .into_sorted_output();
    // Per-key neighbour sets are order-insensitive within a key.
    local.sort();
    sim.sort();
    assert_eq!(sim, local);
}

#[test]
fn blackscholes_sim_equals_local_to_fp_tolerance() {
    let w = PricingWorkload::new(11, 2_000);
    let chunks = 5u64;
    let splits: Vec<_> = (0..chunks).map(|c| w.chunk(c)).collect();
    let cfg = JobConfig::new(1).engine(Engine::barrierless());
    let local = LocalRunner::new(2)
        .run(&BlackScholes, splits, &cfg)
        .unwrap();
    let sim = SimExecutor::new(small_cluster(11))
        .run(
            &BlackScholes,
            &FnInput(|c| w.chunk(c)),
            chunks,
            &cfg,
            &CostModel::default_for_tests(),
            &HashPartitioner,
        )
        .output
        .expect("sim completed");
    let (_, (lm, ls, ln)) = local.partitions[0][0];
    let (_, (sm, ss, sn)) = sim.partitions[0][0];
    assert_eq!(ln, sn);
    // Different absorb order => different FP rounding; tolerance only.
    assert!((lm - sm).abs() < 1e-9, "{lm} vs {sm}");
    assert!((ls - ss).abs() < 1e-9);
}

#[test]
fn map_output_counters_match_between_executors() {
    let w = TextWorkload {
        seed: 8,
        vocab: 100,
        zipf_s: 1.0,
        lines_per_chunk: 30,
        words_per_line: 5,
    };
    let chunks = 4u64;
    let splits: Vec<Vec<(u64, String)>> = (0..chunks).map(|c| w.chunk(c)).collect();
    let cfg = JobConfig::new(2).engine(Engine::barrierless());
    let local = LocalRunner::new(2).run(&WordCount, splits, &cfg).unwrap();
    let sim = SimExecutor::new(small_cluster(8))
        .run(
            &WordCount,
            &FnInput(|c| w.chunk(c)),
            chunks,
            &cfg,
            &CostModel::default_for_tests(),
            &HashPartitioner,
        )
        .output
        .expect("completed");
    use barrier_mapreduce::core::counters::names;
    for name in [
        names::MAP_OUTPUT_RECORDS,
        names::REDUCE_INPUT_RECORDS,
        names::REDUCE_OUTPUT_RECORDS,
    ] {
        assert_eq!(
            local.counters.get(name),
            sim.counters.get(name),
            "counter {name}"
        );
    }
}
