//! Memoized re-runs (§8 future work): identical fingerprints skip the map
//! phase, changed splits re-map, and output always equals a cold run.

use barrier_mapreduce::apps::WordCount;
use barrier_mapreduce::core::counters::names;
use barrier_mapreduce::core::local::memo::{Fingerprint, MemoCache};
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{Engine, HashPartitioner, JobConfig};

type Split = (Fingerprint, Vec<(u64, String)>);

fn splits() -> Vec<Split> {
    vec![
        (Fingerprint(1), vec![(0, "alpha beta alpha".into())]),
        (Fingerprint(2), vec![(1, "beta gamma".into())]),
        (Fingerprint(3), vec![(2, "gamma gamma delta".into())]),
    ]
}

#[test]
fn warm_run_skips_all_maps_and_agrees() {
    for engine in [Engine::Barrier, Engine::barrierless()] {
        let cfg = JobConfig::new(2).engine(engine.clone());
        let runner = LocalRunner::new(2);
        let mut cache: MemoCache<WordCount> = MemoCache::new();

        let cold = runner
            .run_memoized(&WordCount, splits(), &cfg, &HashPartitioner, &mut cache)
            .unwrap();
        assert_eq!(cold.counters.get(names::MAP_OUTPUT_RECORDS), 8);
        assert_eq!(cache.misses(), 3);

        let warm = runner
            .run_memoized(&WordCount, splits(), &cfg, &HashPartitioner, &mut cache)
            .unwrap();
        // No map function ran on the warm pass.
        assert_eq!(warm.counters.get(names::MAP_OUTPUT_RECORDS), 0);
        assert_eq!(cache.hits(), 3);
        assert_eq!(
            cold.into_sorted_output(),
            warm.into_sorted_output(),
            "engine {engine:?}"
        );
    }
}

#[test]
fn changed_split_is_remapped_incrementally() {
    let cfg = JobConfig::new(2).engine(Engine::barrierless());
    let runner = LocalRunner::new(2);
    let mut cache: MemoCache<WordCount> = MemoCache::new();
    runner
        .run_memoized(&WordCount, splits(), &cfg, &HashPartitioner, &mut cache)
        .unwrap();

    // Change one split (new fingerprint, new content).
    let mut updated = splits();
    updated[1] = (Fingerprint(20), vec![(1, "beta epsilon".into())]);
    let out = runner
        .run_memoized(
            &WordCount,
            updated.clone(),
            &cfg,
            &HashPartitioner,
            &mut cache,
        )
        .unwrap();
    // Only the changed split was mapped: 2 words.
    assert_eq!(out.counters.get(names::MAP_OUTPUT_RECORDS), 2);

    // Result equals a from-scratch run over the updated input.
    let fresh = LocalRunner::new(2)
        .run(
            &WordCount,
            updated.into_iter().map(|(_, s)| s).collect(),
            &cfg,
        )
        .unwrap();
    assert_eq!(out.into_sorted_output(), fresh.into_sorted_output());
}

#[test]
fn memoized_matches_plain_runner() {
    let cfg = JobConfig::new(3).engine(Engine::barrierless());
    let mut cache: MemoCache<WordCount> = MemoCache::new();
    let memo_out = LocalRunner::new(2)
        .run_memoized(&WordCount, splits(), &cfg, &HashPartitioner, &mut cache)
        .unwrap();
    let plain_out = LocalRunner::new(2)
        .run(
            &WordCount,
            splits().into_iter().map(|(_, s)| s).collect(),
            &cfg,
        )
        .unwrap();
    assert_eq!(
        memo_out.into_sorted_output(),
        plain_out.into_sorted_output()
    );
}
