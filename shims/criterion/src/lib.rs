//! Offline shim for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! This workspace builds with no network access, so the external crates
//! the code was written against are provided as in-tree shims exposing
//! the exact API subset the repository uses (see the workspace-root
//! `Cargo.toml`). For `criterion 0.5` that subset is: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_with_setup`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The measurement loop is intentionally simple — warm up, then time a
//! fixed number of samples and report min / mean / max wall-clock per
//! iteration (plus element throughput when configured). There is no
//! statistical outlier analysis, HTML report, or baseline comparison;
//! for regression-grade numbers, swap this shim for the real crate.
//! What it does guarantee: every `cargo bench` target in `mr-bench`
//! compiles, runs, and prints comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the id, e.g. `put/10000`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (records, operations) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times closures. Handed to the routine registered with
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock per iteration over the measured samples.
    elapsed_per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.elapsed_per_iter.push(start.elapsed());
        }
    }

    /// Times `routine` only, re-running `setup` (untimed) before every
    /// call.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_per_iter.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finishes the group. (Reporting already happened per benchmark.)
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.elapsed_per_iter.is_empty() {
            println!("{}/{:<28} (no samples)", self.name, id.id);
            return;
        }
        let min = b.elapsed_per_iter.iter().min().unwrap();
        let max = b.elapsed_per_iter.iter().max().unwrap();
        let mean = b.elapsed_per_iter.iter().sum::<Duration>() / b.elapsed_per_iter.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{:<28} [{:>10.2?} {:>10.2?} {:>10.2?}]{}",
            self.name, id.id, min, mean, max, rate
        );
    }
}

/// Entry point handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // 20 samples keeps full `cargo bench` sweeps tolerably fast
        // while still exposing gross regressions; groups override via
        // `sample_size`.
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("noop", 10), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("setup");
        group.sample_size(2);
        let mut setups = 0u32;
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("s", 1), |b| {
            b.iter_with_setup(|| setups += 1, |()| runs += 1);
        });
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }
}
