//! String strategies from regex-like patterns.
//!
//! Upstream proptest accepts any regex as a `&str` strategy. This shim
//! supports the subset the repository's tests actually write — a single
//! atom (`.` or a `[...]` character class of chars and ranges) followed
//! by an optional `{n}` / `{min,max}` repetition — and panics with a
//! clear message on anything richer, so an unsupported pattern fails
//! loudly at test time rather than silently generating garbage.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Characters `.` draws from: mostly printable ASCII, with a tail of
/// multi-byte code points so length-in-bytes ≠ length-in-chars paths
/// (codec framing, UTF-8 boundaries) get exercised.
const WIDE_CHARS: &[char] = ['é', 'ß', 'λ', 'Ж', '中', '🦀', '\u{200b}'].as_slice();

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any character except `\n`.
    AnyChar,
    /// `[...]` — inclusive ranges and singletons.
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            Atom::AnyChar => {
                // 1-in-8 draws take a multi-byte char.
                if rng.gen_range(0u32..8) == 0 {
                    WIDE_CHARS[rng.gen_range(0..WIDE_CHARS.len())]
                } else {
                    char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                    .expect("class ranges avoid surrogates")
            }
        }
    }
}

/// A parsed pattern: one atom repeated `min..=max` times.
#[derive(Debug, Clone)]
pub struct StringPattern {
    atom: Atom,
    min: usize,
    max: usize,
}

fn unsupported(pattern: &str, why: &str) -> ! {
    panic!(
        "string pattern {pattern:?} is outside the regex subset this offline \
         proptest shim supports (single `.` or `[...]` atom with optional \
         `{{n}}`/`{{min,max}}`): {why}"
    )
}

impl StringPattern {
    /// Parses the supported pattern subset.
    pub fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let atom = match chars.next() {
            Some('.') => Atom::AnyChar,
            Some('[') => {
                let mut ranges = Vec::new();
                loop {
                    let c = match chars.next() {
                        Some(']') if !ranges.is_empty() => break,
                        Some(c) if c != ']' => c,
                        _ => unsupported(pattern, "unterminated or empty character class"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(hi) if hi != ']' && c <= hi => ranges.push((c, hi)),
                            _ => unsupported(pattern, "bad range in character class"),
                        }
                    } else {
                        ranges.push((c, c));
                    }
                }
                Atom::Class(ranges)
            }
            _ => unsupported(pattern, "expected `.` or `[`"),
        };
        let (min, max) = match chars.next() {
            None => (1, 1),
            Some('{') => {
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let parts: Vec<&str> = body.split(',').collect();
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| unsupported(pattern, "non-numeric repetition"))
                };
                match parts.as_slice() {
                    [n] => (parse(n), parse(n)),
                    [lo, hi] => (parse(lo), parse(hi)),
                    _ => unsupported(pattern, "malformed repetition"),
                }
            }
            Some(_) => unsupported(pattern, "trailing tokens after atom"),
        };
        if chars.next().is_some() {
            unsupported(pattern, "trailing tokens after repetition");
        }
        assert!(min <= max, "empty repetition range in {pattern:?}");
        StringPattern { atom, min, max }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        // Parsing per draw keeps `&str` itself the strategy (no state);
        // patterns are tiny, so this doesn't show up in test time.
        let pat = StringPattern::parse(self);
        let len = rng.gen_range(pat.min..=pat.max);
        (0..len).map(|_| pat.atom.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = StdRng::seed_from_u64(31);
        let s = "[a-e]{1,3}";
        for _ in 0..500 {
            let v = Strategy::sample(&s, &mut rng);
            let n = v.chars().count();
            assert!((1..=3).contains(&n), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='e').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn dot_with_zero_min() {
        let mut rng = StdRng::seed_from_u64(32);
        let s = ".{0,64}";
        let mut saw_empty = false;
        let mut saw_multibyte = false;
        for _ in 0..2_000 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v.chars().count() <= 64);
            assert!(!v.contains('\n'));
            saw_empty |= v.is_empty();
            saw_multibyte |= v.len() != v.chars().count();
        }
        assert!(saw_empty && saw_multibyte);
    }

    #[test]
    fn bare_atom_is_one_char() {
        let mut rng = StdRng::seed_from_u64(33);
        assert_eq!(Strategy::sample(&"[x]", &mut rng), "x");
    }

    #[test]
    #[should_panic(expected = "outside the regex subset")]
    fn unsupported_pattern_panics() {
        let mut rng = StdRng::seed_from_u64(34);
        let _ = Strategy::sample(&"(a|b)+", &mut rng);
    }
}
