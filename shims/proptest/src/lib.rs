//! Offline shim for the [`proptest`](https://docs.rs/proptest/1)
//! property-testing framework.
//!
//! This workspace builds with no network access, so the external crates
//! the code was written against are provided as in-tree shims exposing
//! the exact API subset the repository uses (see the workspace-root
//! `Cargo.toml`). For `proptest 1.x` that subset is:
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`], [`strategy::Just`], `prop_map` / `prop_flat_map`,
//! * [`arbitrary::any`] over primitive integers and
//!   [`sample::Index`],
//! * integer-range strategies (`0u32..8`), regex-subset string
//!   strategies (`".{0,64}"`, `"[a-e]{1,3}"`), tuple strategies, and
//!   [`collection::vec`] / [`collection::hash_set`].
//!
//! # Semantics vs. the real crate
//!
//! Cases are generated from a deterministic per-test seed (an FNV hash
//! of the test's module path and name), so failures reproduce across
//! runs without a persistence file. Failing cases are **shrunk**: the
//! runner greedily re-tries the candidates each strategy proposes via
//! [`strategy::Strategy::shrink`] (binary-search style for integer
//! ranges, length-then-element reduction for `vec`, component-wise for
//! tuples) and panics with the `Debug` rendering of the minimal failing
//! inputs. Strategies that cannot be inverted (`prop_map`,
//! `prop_flat_map`, `prop_oneof!`, strings) report the original inputs
//! unshrunk. There is no value *tree* as in upstream — shrinking re-runs
//! the property on concrete candidate values instead. The default case
//! count is 256, like upstream, and can be overridden globally with the
//! `PROPTEST_CASES` environment variable or per block with
//! `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

mod macros;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    /// The `prop::` path prefix (`prop::collection::vec`,
    /// `prop::sample::Index`, ...).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
