//! The case-running machinery behind the [`proptest!`](crate::proptest)
//! macro.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hard cap on property re-runs spent shrinking one failure, so a
/// pathological shrink chain cannot hang a test.
const MAX_SHRINK_TRIALS: usize = 1024;

/// Per-block configuration. Subset of upstream's `ProptestConfig`
/// (which the prelude re-exports under that name).
#[derive(Debug, Clone)]
pub struct Config {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, like upstream; the `PROPTEST_CASES` environment
    /// variable overrides (it also overrides explicit
    /// `with_cases` configs, matching upstream precedence).
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property: the assertion message carried out of the test
/// body by `prop_assert*` or `?`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError(reason.into())
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand for a test-body result.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs the cases of one property test with deterministic seeding.
pub struct TestRunner {
    config: Config,
    name: &'static str,
}

/// FNV-1a, so seeds are stable across runs, platforms, and compilers —
/// a failing case reproduces by rerunning the same test binary.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl TestRunner {
    /// A runner for the test `name` (used for seeding and messages).
    pub fn new(config: Config, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Samples `strategy` once per case and runs `body` on the value,
    /// panicking (like a failing `#[test]`) on the first failing case.
    /// Before panicking the failure is *shrunk*: the strategy's
    /// [`shrink`](Strategy::shrink) candidates are re-tried greedily —
    /// take the first candidate that still fails, restart from it —
    /// until none fail (or the shrink-trial budget of 1024 re-runs is
    /// spent), so
    /// the reported counterexample is minimal. The macro expansion folds
    /// the inputs of each attempt into its error message, so the final
    /// message shows the shrunk inputs.
    pub fn run<S, F>(&mut self, strategy: &S, mut body: F)
    where
        S: Strategy,
        S::Value: Clone,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse::<u32>()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES={v:?} is not a number")),
            Err(_) => self.config.cases,
        };
        let base = fnv1a(self.name.as_bytes());
        for case in 0..cases as u64 {
            let mut rng = StdRng::seed_from_u64(base.wrapping_add(case));
            let value = strategy.sample(&mut rng);
            if let Err(e) = body(value.clone()) {
                let (steps, err) = Self::shrink_failure(strategy, value, e, &mut body);
                panic!(
                    "property `{}` failed at case {case}/{cases}: {err}\n\
                     (minimal counterexample after {steps} shrink \
                     step{}; cases are deterministic — rerun this test \
                     to reproduce)",
                    self.name,
                    if steps == 1 { "" } else { "s" },
                )
            }
        }
    }

    /// Greedy binary-search-style shrinking: repeatedly replace the
    /// failing value with its first shrink candidate that still fails.
    /// Returns the number of successful shrink steps and the error of
    /// the minimal failing value.
    fn shrink_failure<S, F>(
        strategy: &S,
        mut value: S::Value,
        mut err: TestCaseError,
        body: &mut F,
    ) -> (usize, TestCaseError)
    where
        S: Strategy,
        S::Value: Clone,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut trials = 0usize;
        let mut steps = 0usize;
        'outer: loop {
            for candidate in strategy.shrink(&value) {
                if trials >= MAX_SHRINK_TRIALS {
                    break 'outer;
                }
                trials += 1;
                if let Err(e) = body(candidate.clone()) {
                    value = candidate;
                    err = e;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (steps, err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        TestRunner::new(Config::with_cases(17), "t::pass").run(&Just(()), |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        TestRunner::new(Config::with_cases(5), "t::fail")
            .run(&Just(()), |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn seeding_is_deterministic_per_test() {
        let mut first: Vec<u64> = Vec::new();
        TestRunner::new(Config::with_cases(3), "t::det").run(&(0u64..u64::MAX), |v| {
            first.push(v);
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        TestRunner::new(Config::with_cases(3), "t::det").run(&(0u64..u64::MAX), |v| {
            second.push(v);
            Ok(())
        });
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    /// The failing region is `x >= 37`; binary-search shrinking must land
    /// on exactly 37, the minimal counterexample.
    #[test]
    #[should_panic(expected = "saw x = 37")]
    fn integer_failure_shrinks_to_minimal_counterexample() {
        TestRunner::new(Config::default(), "t::shrink_int").run(&(0u32..1000), |x| {
            if x >= 37 {
                Err(TestCaseError::fail(format!("saw x = {x}")))
            } else {
                Ok(())
            }
        });
    }

    /// A vec fails when any element is >= 10; the minimal counterexample
    /// is the single-element vec `[10]`.
    #[test]
    #[should_panic(expected = "saw [10]")]
    fn vec_failure_shrinks_to_minimal_counterexample() {
        let s = crate::collection::vec(0u32..100, 0..20);
        TestRunner::new(Config::default(), "t::shrink_vec").run(&s, |v| {
            if v.iter().any(|&x| x >= 10) {
                Err(TestCaseError::fail(format!("saw {v:?}")))
            } else {
                Ok(())
            }
        });
    }

    /// Shrinking only ever re-tries candidates the strategy proposes, so
    /// an unshrinkable failure reports the original value after 0 steps.
    #[test]
    #[should_panic(expected = "after 0 shrink steps")]
    fn unshrinkable_failure_reports_original_value() {
        TestRunner::new(Config::with_cases(5), "t::noshrink").run(&Just(99u32), |v| {
            Err(TestCaseError::fail(format!("v = {v}")))
        });
    }
}
