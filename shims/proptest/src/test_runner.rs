//! The case-running machinery behind the [`proptest!`](crate::proptest)
//! macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-block configuration. Subset of upstream's `ProptestConfig`
/// (which the prelude re-exports under that name).
#[derive(Debug, Clone)]
pub struct Config {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, like upstream; the `PROPTEST_CASES` environment
    /// variable overrides (it also overrides explicit
    /// `with_cases` configs, matching upstream precedence).
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property: the assertion message carried out of the test
/// body by `prop_assert*` or `?`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError(reason.into())
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand for a test-body result.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs the cases of one property test with deterministic seeding.
pub struct TestRunner {
    config: Config,
    name: &'static str,
}

/// FNV-1a, so seeds are stable across runs, platforms, and compilers —
/// a failing case reproduces by rerunning the same test binary.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl TestRunner {
    /// A runner for the test `name` (used for seeding and messages).
    pub fn new(config: Config, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Runs `body` once per case, panicking (like a failing `#[test]`)
    /// on the first case whose result is an error. The macro expansion
    /// folds the sampled inputs into the error message before returning
    /// it here.
    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse::<u32>()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES={v:?} is not a number")),
            Err(_) => self.config.cases,
        };
        let base = fnv1a(self.name.as_bytes());
        for case in 0..cases as u64 {
            let mut rng = StdRng::seed_from_u64(base.wrapping_add(case));
            match body(&mut rng) {
                Ok(_) => {}
                Err(e) => panic!(
                    "property `{}` failed at case {case}/{cases}: {e}\n\
                     (no shrinking in the offline proptest shim; the case \
                     is deterministic — rerun this test to reproduce)",
                    self.name
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        TestRunner::new(Config::with_cases(17), "t::pass").run(|_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        TestRunner::new(Config::with_cases(5), "t::fail")
            .run(|_rng| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn seeding_is_deterministic_per_test() {
        use rand::Rng;
        let mut first: Vec<u64> = Vec::new();
        TestRunner::new(Config::with_cases(3), "t::det").run(|rng| {
            first.push(rng.gen::<u64>());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        TestRunner::new(Config::with_cases(3), "t::det").run(|rng| {
            second.push(rng.gen::<u64>());
            Ok(())
        });
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }
}
