//! The user-facing macros: `proptest!`, `prop_assert*`, `prop_oneof!`.

/// Declares property tests. Mirrors upstream's surface:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each declared function becomes an ordinary `#[test]` (the attribute
/// is written by the caller, as upstream requires) whose body runs once
/// per generated case. `prop_assert*` failures and `?`-propagated
/// [`TestCaseError`](crate::test_runner::TestCaseError)s fail the case
/// with the sampled inputs included in the panic message.
// The doctest deliberately shows `#[test]` the way callers must write
// it; the generated test is not run from the doctest itself.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            // One tuple strategy over all declared inputs, so the runner
            // can shrink a failing case component by component.
            let __proptest_strategy = ($($strategy,)+);
            runner.run(&__proptest_strategy, |($($arg,)+)| {
                // Rendered up front: the body may consume the inputs.
                // Each shrink attempt re-renders, so the final panic
                // shows the *shrunk* inputs.
                let __proptest_inputs = format!(
                    concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let __proptest_result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                __proptest_result.map_err(|e| {
                    $crate::test_runner::TestCaseError::fail(format!(
                        "{e}\n  inputs:{}",
                        __proptest_inputs
                    ))
                })
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: {:?}",
                left
            )));
        }
    }};
}

/// Picks among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn smoke_tuple_and_vec(
            pair in (0u32..10, -5i64..5),
            xs in prop::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!((-5..5).contains(&pair.1));
            prop_assert!(xs.len() < 16);
        }

        #[test]
        fn smoke_oneof_and_strings(
            s in "[a-c]{1,4}",
            v in prop_oneof![2 => Just(1u8), 1 => Just(2u8)],
        ) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(v == 1 || v == 2);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_works(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_inputs() {
        // No `#[test]` attribute: invoked directly so the panic message
        // can be asserted on.
        proptest! {
            fn inner_always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner_always_fails();
    }

    /// The failing region is `x >= 37`; the panic must report the
    /// *shrunk* inputs — exactly the boundary value.
    #[test]
    #[should_panic(expected = "x = 37")]
    fn failing_case_reports_minimal_shrunk_inputs() {
        proptest! {
            fn inner_shrinks(x in 0u32..1000) {
                prop_assert!(x < 37, "too big");
            }
        }
        inner_shrinks();
    }
}
