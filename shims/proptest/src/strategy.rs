//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value *tree*: a strategy is a
/// seeded sampler plus a [`shrink`](Strategy::shrink) step that proposes
/// smaller candidates for a failing value. The test runner greedily
/// re-runs the property on candidates (binary-search style for integer
/// and collection strategies) until none fail, so the reported
/// counterexample is minimal. Combinator methods carry `Self: Sized`
/// bounds so `dyn Strategy<Value = T>` stays object-safe —
/// [`prop_oneof!`](crate::prop_oneof) relies on that.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing `value`,
    /// simplest first. The default — for strategies whose values have no
    /// meaningful order, or that cannot be inverted (maps, unions) — is
    /// no candidates, which disables shrinking for that strategy.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each generated value and samples
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Boxes a strategy; used by [`prop_oneof!`](crate::prop_oneof) to mix
/// heterogeneous strategy types with one value type.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Weighted choice among strategies with a common value type; what
/// [`prop_oneof!`](crate::prop_oneof) builds.
pub struct WeightedUnion<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> WeightedUnion<T> {
    /// A union over `(weight, strategy)` pairs. Weights must not all be
    /// zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        WeightedUnion {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.options {
            if pick < *weight as u64 {
                return strategy.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick exceeded total weight")
    }
}

/// Shrink candidates for an integer that failed: the range minimum, then
/// values approaching the failing one by halving the remaining distance
/// (`v - d/2, v - d/4, …, v - 1`). Greedy take-first-failing over this
/// list converges like binary search to the smallest failing value.
fn int_shrink_candidates(lo: i128, v: i128) -> Vec<i128> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let candidate = v - delta;
        if candidate != *out.last().expect("non-empty") {
            out.push(candidate);
        }
        delta /= 2;
    }
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
            // Component-wise: substitute each component's candidates
            // while holding the other components fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_map_and_tuples() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let t = (0u8..3, -5i64..5, 0.0f64..1.0);
        for _ in 0..100 {
            let (a, b, c) = t.sample(&mut rng);
            assert!(a < 3 && (-5..5).contains(&b) && (0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn flat_map_chains() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = Just(4usize).prop_flat_map(|n| crate::collection::vec(0u32..100, n));
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng).len(), 4);
        }
    }

    #[test]
    fn integer_shrink_walks_toward_range_start() {
        let s = 5u32..1000;
        let cands = s.shrink(&100);
        assert_eq!(cands.first(), Some(&5), "simplest candidate first");
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted: {cands:?}");
        assert_eq!(*cands.last().unwrap(), 99, "largest candidate is v-1");
        assert!(!cands.contains(&100), "never proposes the value itself");
        assert!(s.shrink(&5).is_empty(), "range start cannot shrink");

        let inc = -10i64..=10;
        let cands = inc.shrink(&3);
        assert_eq!(cands.first(), Some(&-10));
        assert_eq!(*cands.last().unwrap(), 2);
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let t = (0u8..10, 0u8..10);
        let cands = t.shrink(&(4, 6));
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            // Exactly one component moved, the other is untouched.
            assert!(
                (*a != 4 && *b == 6) || (*a == 4 && *b != 6),
                "({a}, {b}) changed both or neither component"
            );
        }
        assert!(cands.contains(&(0, 6)) && cands.contains(&(4, 0)));
    }

    #[test]
    fn unshrinkable_strategies_propose_nothing() {
        assert!(Just(7u32).shrink(&7).is_empty());
        let mapped = (0u32..10).prop_map(|v| v * 2);
        assert!(mapped.shrink(&4).is_empty());
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = WeightedUnion::new(vec![(9, boxed(Just(1u8))), (1, boxed(Just(0u8)))]);
        let ones: u32 = (0..10_000).map(|_| s.sample(&mut rng) as u32).sum();
        assert!((8_500..9_500).contains(&ones), "ones {ones}");
    }
}
