//! [`any::<T>()`](any) — the canonical strategy for a type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `T`, mirroring proptest's `any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Bias 1-in-8 draws toward boundary values; uniform
                // integers almost never exercise overflow edges.
                if rng.gen_range(0u32..8) == 0 {
                    [0 as $t, 1 as $t, <$t>::MAX, <$t>::MIN][rng.gen_range(0usize..4)]
                } else {
                    rng.gen::<$t>()
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Uniform unit interval scaled across magnitudes, plus edges.
        match rng.gen_range(0u32..16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => {
                let magnitude = rng.gen_range(-300i32..300) as f64;
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>() * 10f64.powf(magnitude)
            }
        }
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        crate::sample::Index::new(rng.gen::<u64>() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_edges_and_bulk() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = any::<u16>();
        let draws: Vec<u16> = (0..10_000).map(|_| s.sample(&mut rng)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&u16::MAX));
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert!(distinct.len() > 1_000);
    }
}
