//! Collection strategies: [`vec()`] and [`hash_set`].

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;

/// A permitted size span for a generated collection. Built via `From`
/// so call sites pass `8` (exact) or `1..120` (half-open), like
/// upstream's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
    /// Length reductions first (shortest permitted prefix, half-length
    /// prefix, drop-first, drop-last — never below `size.min`), then
    /// element-wise substitution of each element's own candidates.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let len = value.len();
        let min = self.size.min;
        if len > min {
            out.push(value[..min].to_vec());
            let half = min.max(len / 2);
            if half != min && half != len {
                out.push(value[..half].to_vec());
            }
            out.push(value[1..].to_vec());
            out.push(value[..len - 1].to_vec());
        }
        for (i, elem) in value.iter().enumerate() {
            for candidate in self.element.shrink(elem) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Generates `HashSet`s from `element` draws; duplicate draws collapse,
/// so the set size may come out below the sampled target (same
/// behaviour as upstream under duplicate pressure).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        for _ in 0..target {
            set.insert(self.element.sample(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(21);
        let s = vec(any::<u8>(), 1..120);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((1..120).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_is_exact() {
        let mut rng = StdRng::seed_from_u64(22);
        let s = vec(0u32..8, 8);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng).len(), 8);
        }
    }

    #[test]
    fn vec_shrink_shortens_and_simplifies_elements() {
        let s = vec(0u32..100, 1..10);
        let cands = s.shrink(&[50u32, 7, 20].to_vec());
        // Shortest permitted prefix leads.
        assert_eq!(cands[0], [50]);
        // Length-reducing candidates never go below size.min.
        assert!(cands.iter().all(|c| !c.is_empty()));
        // Drop-first and drop-last both appear.
        assert!(cands.contains(&[7, 20].to_vec()));
        assert!(cands.contains(&[50, 7].to_vec()));
        // Element-wise substitution keeps the length, moves one element.
        assert!(cands.contains(&[0, 7, 20].to_vec()));

        // A minimum-length vec of range-minimum elements cannot shrink.
        assert!(s.shrink(&[0u32].to_vec()).is_empty());
    }

    #[test]
    fn hash_set_respects_upper_bound() {
        let mut rng = StdRng::seed_from_u64(23);
        let s = hash_set(any::<u32>(), 0..40);
        for _ in 0..200 {
            assert!(s.sample(&mut rng).len() < 40);
        }
    }
}
