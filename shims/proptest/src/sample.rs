//! Sampling helpers: [`Index`].

/// An abstract index into a collection of as-yet-unknown size, produced
/// by `any::<prop::sample::Index>()` and resolved with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(usize);

impl Index {
    /// Wraps a raw draw. (Constructor used by the `Arbitrary` impl;
    /// upstream hides this, call sites only use [`Index::index`].)
    pub fn new(raw: usize) -> Self {
        Index(raw)
    }

    /// Resolves the abstract index against a collection of `size`
    /// elements, yielding a value in `0..size`. Panics if `size == 0`.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "cannot index an empty collection");
        self.0 % size
    }
}

#[cfg(test)]
mod tests {
    use super::Index;

    #[test]
    fn stays_in_bounds() {
        for raw in [0usize, 1, 7, usize::MAX] {
            let idx = Index::new(raw);
            for size in [1usize, 2, 13, 1000] {
                assert!(idx.index(size) < size);
            }
        }
    }
}
