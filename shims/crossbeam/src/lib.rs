//! Offline shim for the [`crossbeam`](https://docs.rs/crossbeam/0.8)
//! crate.
//!
//! This workspace builds with no network access, so the external crates
//! the code was written against are provided as in-tree shims exposing
//! the exact API subset the repository uses (see the workspace-root
//! `Cargo.toml`). For `crossbeam 0.8` that subset is
//! [`channel::bounded`] with cloneable senders — the shuffle channels of
//! `mr-core`'s pipelined local executor.
//!
//! The implementation delegates to `std::sync::mpsc::sync_channel`,
//! which has the same semantics the executor relies on: bounded
//! capacity with blocking back-pressure, `send` failing once the
//! receiver is gone, and receivers observing EOF when every sender has
//! been dropped. Crossbeam's extras (select, MPMC receivers, zero-cap
//! rendezvous channels) are deliberately absent — nothing here uses
//! them.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiving side has
    /// disconnected. Carries the unsent message, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half of a bounded channel. Cloneable; `send` blocks
    /// while the channel is full.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `msg`. Errors only
        /// if the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// A blocking iterator over received messages; ends when every
        /// sender has been dropped and the buffer is drained.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Receives one message, blocking; `None`-like error once all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Error returned by [`Receiver::recv`] on a closed, empty channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates a bounded channel with room for `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, SendError};

    #[test]
    fn roundtrip_and_eof() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            for i in 10..20 {
                tx2.send(i).unwrap();
            }
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }
}
