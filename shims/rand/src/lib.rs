//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! This workspace builds with no network access, so the external crates
//! the code was written against are provided as in-tree shims exposing
//! the exact API subset the repository uses (see the workspace-root
//! `Cargo.toml`). For `rand 0.8` that subset is:
//!
//! * [`rngs::StdRng`] — the seedable standard generator,
//! * [`SeedableRng::seed_from_u64`] — deterministic construction,
//! * [`Rng::gen`] and [`Rng::gen_range`] — uniform sampling.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, fast, non-cryptographic PRNG (the same family rand's
//! own small RNGs use). The statistical tests in `mr-workloads` (moment
//! checks over 100k samples) pass against it. Sequences differ from the
//! real rand crate's ChaCha-based `StdRng`, which is fine: nothing in
//! the repo depends on rand's exact streams, only on seed-determinism
//! within one build.

/// Core trait: a source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// A seedable RNG. Subset of rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`]. Subset of rand's `Rng`.
pub trait Rng: RngCore {
    /// Returns a value uniformly distributed over `T`'s standard
    /// domain: the full range for integers, `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value uniformly distributed in `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard uniform distribution (rand's `Standard`
/// distribution, expressed as a trait so `Rng::gen` stays simple).
pub trait Standard: Sized {
    /// Draws one standard-uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly. Subset of rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of a plain `% span` would be harmless
                // here, but widening to u128 removes it outright.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                self.start + (wide >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u128 + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                start + (wide >> 64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                (self.start as i128 + (wide >> 64) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                (start as i128 + (wide >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp back into
        // the half-open interval.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64 so any `u64` seed yields a well-mixed
    /// 256-bit state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
            let i = rng.gen_range(-100i64..-50);
            assert!((-100..-50).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_covers_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
